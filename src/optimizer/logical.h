// Logical (analyzed) queries: the single-block SELECT/FROM/WHERE/GROUP BY
// form the paper's optimizer handles (§VI, "Query Optimizer"). Produced by
// the SQL front end; consumed by the Volcano-style optimizer.
//
// Column references use a *global column space*: the concatenation of the
// FROM-list relations' schemas in order. The optimizer remaps them into each
// physical operator's output layout.
#ifndef ORCHESTRA_OPTIMIZER_LOGICAL_H_
#define ORCHESTRA_OPTIMIZER_LOGICAL_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "query/expr.h"
#include "storage/schema.h"

namespace orchestra::optimizer {

using query::AggFn;
using query::Expr;

struct TableRef {
  std::string relation;
  std::string alias;  // == relation when not aliased
  storage::RelationDef def;
  uint32_t first_column = 0;  // offset of this table in the global space
};

/// One SELECT-list item: either a scalar expression over the global column
/// space (must be group-by-consistent when aggregating) or an aggregate.
struct SelectItem {
  std::string name;  // output column name
  bool is_aggregate = false;
  Expr expr;                      // scalar case; for aggregates: the argument
  AggFn agg_fn = AggFn::kCount;   // aggregate case
  bool agg_has_arg = false;       // COUNT(*) has none
  /// AVG decomposes to SUM/COUNT at analysis time; this marks the division
  /// the planner must synthesize (select item = sum_slot / count_slot).
  bool is_avg = false;
};

struct OrderItem {
  uint32_t select_index = 0;  // position in the select list
  bool asc = true;
};

struct AnalyzedQuery {
  std::vector<TableRef> tables;
  /// WHERE conjuncts over the global column space.
  std::vector<Expr> conjuncts;
  std::vector<SelectItem> items;
  bool has_group_by = false;
  std::vector<int32_t> group_cols;  // global column indexes
  std::vector<OrderItem> order_by;
  int64_t limit = -1;

  size_t global_arity() const {
    size_t n = 0;
    for (const auto& t : tables) n += t.def.schema.arity();
    return n;
  }
  std::string ToString() const;
};

/// Resolves relation definitions during analysis & planning.
using CatalogView = std::function<Result<storage::RelationDef>(const std::string&)>;

/// Cardinality statistics the optimizer costs plans with. The paper's
/// optimizer "relies on information (previously computed and stored) about
/// machine CPU and disk performance, as well as pairwise bandwidth"; the
/// deployment-level knobs live in CostParams (optimizer.h), the per-relation
/// ones here.
struct RelationStats {
  uint64_t row_count = 1000;
  double avg_tuple_bytes = 64;
  /// Distinct values per column (empty = unknown). Drives group-count
  /// estimates for aggregation strategy selection.
  std::vector<uint64_t> column_distinct;
};

using StatsCatalog = std::map<std::string, RelationStats>;

}  // namespace orchestra::optimizer

#endif  // ORCHESTRA_OPTIMIZER_LOGICAL_H_
