#include "optimizer/logical.h"

namespace orchestra::optimizer {

std::string AnalyzedQuery::ToString() const {
  std::string s = "SELECT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i) s += ", ";
    const SelectItem& item = items[i];
    if (item.is_aggregate) {
      s += item.is_avg ? "AVG" : AggFnName(item.agg_fn);
      s += "(";
      s += item.agg_has_arg ? item.expr.ToString() : "*";
      s += ")";
    } else {
      s += item.expr.ToString();
    }
    s += " AS " + item.name;
  }
  s += " FROM ";
  for (size_t i = 0; i < tables.size(); ++i) {
    if (i) s += ", ";
    s += tables[i].relation;
    if (tables[i].alias != tables[i].relation) s += " " + tables[i].alias;
  }
  if (!conjuncts.empty()) {
    s += " WHERE ";
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if (i) s += " AND ";
      s += conjuncts[i].ToString();
    }
  }
  if (has_group_by) {
    s += " GROUP BY ";
    for (size_t i = 0; i < group_cols.size(); ++i) {
      if (i) s += ", ";
      s += "$" + std::to_string(group_cols[i]);
    }
  }
  if (limit >= 0) s += " LIMIT " + std::to_string(limit);
  return s;
}

}  // namespace orchestra::optimizer
