#include "optimizer/optimizer.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/log.h"

namespace orchestra::optimizer {

using query::AggSpec;
using query::OpKind;
using query::PhysOp;
using query::PhysicalPlan;

namespace {

constexpr double kDefaultSelectivity = 1.0 / 3.0;
constexpr double kEqualitySelectivity = 1.0 / 10.0;

/// A physical plan fragment with its logical/physical properties.
struct SubPlan {
  std::vector<PhysOp> ops;  // local ids == index; last op need not be root
  int32_t root = -1;
  std::vector<int32_t> out_cols;   // global column index per output position
  std::vector<int32_t> part_cols;  // global cols the output is hashed on
  bool broadcast = false;          // full copy at every node
  double rows = 0;
  double row_bytes = 0;
  double cost = 0;
};

struct JoinEdge {
  uint32_t left_table, right_table;
  int32_t left_col, right_col;  // global
};

int32_t AppendOp(SubPlan* p, PhysOp op) {
  op.id = static_cast<int32_t>(p->ops.size());
  p->ops.push_back(std::move(op));
  p->root = p->ops.back().id;
  return p->root;
}

/// Appends `src`'s ops into `dst`, rebasing ids; returns src's new root id.
int32_t MergeFragment(SubPlan* dst, const SubPlan& src) {
  int32_t base = static_cast<int32_t>(dst->ops.size());
  for (PhysOp op : src.ops) {
    op.id += base;
    for (int32_t& c : op.children) c += base;
    dst->ops.push_back(std::move(op));
  }
  return src.root + base;
}

/// Maps a global column index to its position in `out_cols`.
Result<int32_t> PosOf(const std::vector<int32_t>& out_cols, int32_t global) {
  for (size_t i = 0; i < out_cols.size(); ++i) {
    if (out_cols[i] == global) return static_cast<int32_t>(i);
  }
  return Status::InvalidArgument("column not available in subplan output");
}

Result<Expr> Remap(const Expr& e, const std::vector<int32_t>& out_cols) {
  std::vector<int32_t> referenced;
  e.CollectColumns(&referenced);
  int32_t max_col = 0;
  for (int32_t c : referenced) max_col = std::max(max_col, c);
  std::vector<int32_t> mapping(static_cast<size_t>(max_col) + 1, -1);
  for (int32_t c : referenced) {
    ORC_ASSIGN_OR_RETURN(int32_t pos, PosOf(out_cols, c));
    mapping[c] = pos;
  }
  return e.RemapColumns(mapping);
}

bool SameCols(const std::vector<int32_t>& a, const std::vector<int32_t>& b) {
  return a == b;
}

}  // namespace

Result<PlannedQuery> Optimizer::Plan(const AnalyzedQuery& q) {
  search_stats_ = SearchStats{};
  if (q.tables.empty()) return Status::InvalidArgument("no tables");
  if (q.tables.size() > 16) return Status::NotSupported("too many tables");
  const size_t n_tables = q.tables.size();
  const double n = static_cast<double>(params_.num_nodes);
  const sim::CostModel& cm = *params_.costs;

  // ---- Classify conjuncts -------------------------------------------------
  auto table_of_col = [&q](int32_t col) -> uint32_t {
    for (size_t t = q.tables.size(); t-- > 0;) {
      if (col >= static_cast<int32_t>(q.tables[t].first_column)) {
        return static_cast<uint32_t>(t);
      }
    }
    return 0;
  };
  auto tables_of_expr = [&](const Expr& e) {
    std::vector<int32_t> cols;
    e.CollectColumns(&cols);
    std::set<uint32_t> ts;
    for (int32_t c : cols) ts.insert(table_of_col(c));
    return ts;
  };

  std::vector<std::vector<Expr>> table_preds(n_tables);
  std::vector<JoinEdge> edges;
  std::vector<Expr> residual;
  for (const Expr& c : q.conjuncts) {
    auto ts = tables_of_expr(c);
    if (ts.size() <= 1) {
      uint32_t t = ts.empty() ? 0 : *ts.begin();
      table_preds[t].push_back(c);
      continue;
    }
    // Equi-join edge: col = col across two tables.
    if (ts.size() == 2 && c.kind() == Expr::Kind::kCompare && c.op() == '=' &&
        c.args()[0].kind() == Expr::Kind::kColumn &&
        c.args()[1].kind() == Expr::Kind::kColumn) {
      int32_t a = c.args()[0].column(), b = c.args()[1].column();
      uint32_t ta = table_of_col(a), tb = table_of_col(b);
      if (ta != tb) {
        edges.push_back(JoinEdge{ta, tb, a, b});
        continue;
      }
    }
    residual.push_back(c);
  }

  // Needed columns per table: referenced anywhere above the scans.
  std::set<int32_t> needed;
  auto note = [&needed](const Expr& e) {
    std::vector<int32_t> cols;
    e.CollectColumns(&cols);
    needed.insert(cols.begin(), cols.end());
  };
  for (const auto& item : q.items) note(item.expr);
  for (int32_t g : q.group_cols) needed.insert(g);
  for (const Expr& e : residual) note(e);
  for (const JoinEdge& e : edges) {
    needed.insert(e.left_col);
    needed.insert(e.right_col);
  }

  // ---- Leaf candidates -----------------------------------------------------
  // memo[subset] -> Pareto set of candidates.
  std::map<uint32_t, std::vector<SubPlan>> memo;

  auto stats_of = [this](const std::string& rel) {
    auto it = stats_.find(rel);
    return it != stats_.end() ? it->second : RelationStats{};
  };

  for (size_t t = 0; t < n_tables; ++t) {
    const TableRef& tr = q.tables[t];
    RelationStats rs = stats_of(tr.relation);
    double sel = 1.0;
    for (const Expr& p : table_preds[t]) {
      sel *= (p.kind() == Expr::Kind::kCompare && p.op() == '=')
                 ? kEqualitySelectivity
                 : kDefaultSelectivity;
    }

    // Output columns: the needed subset of this table's columns.
    std::vector<int32_t> table_out;
    std::vector<int32_t> key_cols;  // global ids of the storage key attrs
    double bytes_per_col = rs.avg_tuple_bytes /
                           std::max<double>(1.0, tr.def.schema.arity());
    double out_bytes = 0;
    for (uint32_t c = 0; c < tr.def.schema.arity(); ++c) {
      int32_t global = static_cast<int32_t>(tr.first_column + c);
      if (c < tr.def.schema.key_arity()) key_cols.push_back(global);
      if (needed.count(global)) {
        table_out.push_back(global);
        out_bytes += bytes_per_col;
      }
    }
    if (table_out.empty() && !key_cols.empty()) {
      table_out.push_back(key_cols[0]);
      out_bytes += bytes_per_col;
    }
    out_bytes = std::max(out_bytes, 8.0);

    // Pred columns may not be in table_out; scans output the full tuple and
    // the Project narrows after the Select, so that's fine.
    bool covering = true;
    for (int32_t g : table_out) {
      if (std::find(key_cols.begin(), key_cols.end(), g) == key_cols.end()) {
        covering = false;
      }
    }
    for (const Expr& p : table_preds[t]) {
      std::vector<int32_t> cols;
      p.CollectColumns(&cols);
      for (int32_t c : cols) {
        if (std::find(key_cols.begin(), key_cols.end(), c) == key_cols.end()) {
          covering = false;
        }
      }
    }

    auto make_scan = [&](bool broadcast) -> SubPlan {
      SubPlan sp;
      PhysOp scan;
      scan.kind = covering ? OpKind::kCoveringScan : OpKind::kScan;
      scan.relation = tr.relation;
      scan.broadcast_local = broadcast;
      int32_t cur = AppendOp(&sp, std::move(scan));
      // Scan output: full tuple (global cols of the table) — or key attrs
      // only for a covering scan.
      std::vector<int32_t> cur_cols;
      if (covering) {
        cur_cols = key_cols;
      } else {
        for (uint32_t c = 0; c < tr.def.schema.arity(); ++c) {
          cur_cols.push_back(static_cast<int32_t>(tr.first_column + c));
        }
      }
      double scan_rows = static_cast<double>(rs.row_count);
      double denom = broadcast ? 1.0 : n;
      sp.cost += scan_rows / denom *
                 (covering ? cm.index_entry_us : cm.tuple_scan_us) / params_.cpu_speed;

      if (!table_preds[t].empty()) {
        Expr pred = table_preds[t][0];
        for (size_t i = 1; i < table_preds[t].size(); ++i) {
          pred = Expr::And(pred, table_preds[t][i]);
        }
        auto remapped = Remap(pred, cur_cols);
        ORC_CHECK(remapped.ok(), "leaf predicate remap failed");
        PhysOp select;
        select.kind = OpKind::kSelect;
        select.children = {cur};
        select.predicate = std::move(remapped).value();
        cur = AppendOp(&sp, std::move(select));
        sp.cost += scan_rows / denom * cm.predicate_eval_us / params_.cpu_speed;
      }
      if (cur_cols != table_out) {
        PhysOp proj;
        proj.kind = OpKind::kProject;
        proj.children = {cur};
        for (int32_t g : table_out) {
          auto pos = PosOf(cur_cols, g);
          ORC_CHECK(pos.ok(), "project col missing");
          proj.columns.push_back(*pos);
        }
        cur = AppendOp(&sp, std::move(proj));
      }
      sp.root = cur;
      sp.out_cols = table_out;
      sp.rows = scan_rows * sel;
      sp.row_bytes = out_bytes;
      sp.broadcast = broadcast;
      if (!broadcast) {
        // Storage partitioning (§IV): the placement prefix of the key.
        uint32_t part_arity = tr.def.effective_partition_arity();
        sp.part_cols.assign(key_cols.begin(), key_cols.begin() + part_arity);
      }
      return sp;
    };

    std::vector<SubPlan>& cands = memo[1u << t];
    cands.push_back(make_scan(false));
    if (tr.def.replicate_everywhere) cands.push_back(make_scan(true));
    search_stats_.candidates_generated += cands.size();
  }

  // ---- Join enumeration (top-down with memoization would recurse; with the
  // memo keyed by subset, bottom-up subset DP explores the identical space,
  // including bushy shapes) ---------------------------------------------------
  double best_complete = std::numeric_limits<double>::infinity();

  auto rehash_cost = [&](const SubPlan& sp) {
    double bytes = sp.rows * sp.row_bytes;
    double cpu = sp.rows / n * cm.marshal_per_tuple_us * 2 +
                 bytes / n / 1024.0 * (cm.marshal_per_kb_us + cm.compress_per_kb_us) * 2;
    double net = bytes / n / params_.bandwidth_bytes_per_sec * 1e6;
    return cpu / params_.cpu_speed + net;
  };

  auto ensure_partitioned = [&](const SubPlan& sp, const std::vector<int32_t>& want,
                                SubPlan* out) -> bool {
    *out = sp;
    if (sp.broadcast) return true;  // every node has everything
    if (SameCols(sp.part_cols, want)) return true;
    PhysOp rehash;
    rehash.kind = OpKind::kRehash;
    rehash.children = {out->root};
    for (int32_t g : want) {
      auto pos = PosOf(sp.out_cols, g);
      if (!pos.ok()) return false;
      rehash.hash_cols.push_back(*pos);
    }
    AppendOp(out, std::move(rehash));
    out->part_cols = want;
    out->cost += rehash_cost(sp);
    return true;
  };

  auto key_of_table = [&](uint32_t t) {
    std::vector<int32_t> keys;
    for (uint32_t c = 0; c < q.tables[t].def.schema.key_arity(); ++c) {
      keys.push_back(static_cast<int32_t>(q.tables[t].first_column + c));
    }
    return keys;
  };

  const uint32_t full = (n_tables >= 32) ? 0xFFFFFFFFu : ((1u << n_tables) - 1);
  // Enumerate subsets in increasing popcount order.
  std::vector<uint32_t> subsets;
  for (uint32_t s = 1; s <= full; ++s) {
    if ((s & full) == s) subsets.push_back(s);
  }
  std::sort(subsets.begin(), subsets.end(), [](uint32_t a, uint32_t b) {
    int pa = __builtin_popcount(a), pb = __builtin_popcount(b);
    if (pa != pb) return pa < pb;
    return a < b;
  });

  for (uint32_t s : subsets) {
    if (__builtin_popcount(s) < 2) continue;
    std::vector<SubPlan>& cands = memo[s];
    // All partitions (L, R) of s — this includes bushy plans.
    for (uint32_t l = (s - 1) & s; l > 0; l = (l - 1) & s) {
      uint32_t r = s & ~l;
      if (l > r) continue;  // each unordered pair once; join is symmetric here
      auto li = memo.find(l);
      auto ri = memo.find(r);
      if (li == memo.end() || ri == memo.end()) continue;

      // Join keys connecting L and R.
      std::vector<std::pair<int32_t, int32_t>> keys;  // (left global, right global)
      for (const JoinEdge& e : edges) {
        bool lt_in_l = (l >> e.left_table) & 1, rt_in_r = (r >> e.right_table) & 1;
        bool lt_in_r = (r >> e.left_table) & 1, rt_in_l = (l >> e.right_table) & 1;
        if (lt_in_l && rt_in_r) keys.emplace_back(e.left_col, e.right_col);
        if (lt_in_r && rt_in_l) keys.emplace_back(e.right_col, e.left_col);
      }
      if (keys.empty()) continue;  // avoid cross products
      std::sort(keys.begin(), keys.end());
      std::vector<int32_t> lkeys, rkeys;
      for (auto& [a, b] : keys) {
        lkeys.push_back(a);
        rkeys.push_back(b);
      }

      for (const SubPlan& lc : li->second) {
        for (const SubPlan& rc : ri->second) {
          if (lc.cost + rc.cost >= best_complete) {
            search_stats_.pruned_by_bound += 1;
            continue;  // branch-and-bound
          }
          if (lc.broadcast && rc.broadcast) continue;  // degenerate
          // A broadcast side co-locates with anything: the partitioned side
          // keeps its current partitioning and needs no rehash.
          SubPlan lp, rp;
          if (rc.broadcast) {
            lp = lc;
          } else if (!ensure_partitioned(lc, lkeys, &lp)) {
            continue;
          }
          if (lc.broadcast) {
            rp = rc;
          } else if (!ensure_partitioned(rc, rkeys, &rp)) {
            continue;
          }

          SubPlan joined;
          joined.cost = lp.cost + rp.cost;
          int32_t lroot = MergeFragment(&joined, lp);
          int32_t rroot = MergeFragment(&joined, rp);
          PhysOp join;
          join.kind = OpKind::kHashJoin;
          join.children = {lroot, rroot};
          bool ok = true;
          for (int32_t g : lkeys) {
            auto pos = PosOf(lp.out_cols, g);
            if (!pos.ok()) ok = false;
            else join.left_keys.push_back(*pos);
          }
          for (int32_t g : rkeys) {
            auto pos = PosOf(rp.out_cols, g);
            if (!pos.ok()) ok = false;
            else join.right_keys.push_back(*pos);
          }
          if (!ok) continue;
          AppendOp(&joined, std::move(join));

          joined.out_cols = lp.out_cols;
          joined.out_cols.insert(joined.out_cols.end(), rp.out_cols.begin(),
                                 rp.out_cols.end());
          // FK-join cardinality: if one side's keys are its relation's
          // storage key, output ~= other side's rows.
          auto is_table_key = [&](uint32_t side_mask,
                                  const std::vector<int32_t>& jkeys) {
            if (__builtin_popcount(side_mask) != 1) return false;
            uint32_t t = static_cast<uint32_t>(__builtin_ctz(side_mask));
            return SameCols(jkeys, key_of_table(t));
          };
          double sel_rows;
          if (is_table_key(r, rkeys)) {
            sel_rows = lp.rows;
          } else if (is_table_key(l, lkeys)) {
            sel_rows = rp.rows;
          } else {
            sel_rows = lp.rows * rp.rows /
                       std::max(1.0, std::max(lp.rows, rp.rows)) * 2.0;
          }
          joined.rows = std::max(1.0, sel_rows);
          joined.row_bytes = lp.row_bytes + rp.row_bytes;
          joined.broadcast = lp.broadcast && rp.broadcast;
          if (lp.broadcast) {
            joined.part_cols = rp.part_cols;
          } else if (rp.broadcast) {
            joined.part_cols = lp.part_cols;
          } else {
            joined.part_cols = lkeys;
          }
          double denom = joined.broadcast ? 1.0 : n;
          joined.cost += (lp.rows + rp.rows) / denom * cm.hash_build_us /
                             params_.cpu_speed +
                         joined.rows / denom * cm.hash_probe_us / params_.cpu_speed;

          // Residual predicates whose tables are all inside s.
          for (const Expr& res : residual) {
            auto ts = tables_of_expr(res);
            bool all_in = std::all_of(ts.begin(), ts.end(), [s](uint32_t t) {
              return (s >> t) & 1;
            });
            if (!all_in) continue;
            // Apply only at the first subset where all tables are present:
            // that is exactly when neither child subset contains them all.
            auto contained = [&ts](uint32_t mask) {
              return std::all_of(ts.begin(), ts.end(),
                                 [mask](uint32_t t) { return (mask >> t) & 1; });
            };
            if (contained(l) || contained(r)) continue;
            auto remapped = Remap(res, joined.out_cols);
            if (!remapped.ok()) continue;
            PhysOp select;
            select.kind = OpKind::kSelect;
            select.children = {joined.root};
            select.predicate = std::move(remapped).value();
            AppendOp(&joined, std::move(select));
            joined.rows *= kDefaultSelectivity;
            joined.cost += joined.rows / denom * cm.predicate_eval_us;
          }

          search_stats_.candidates_generated += 1;
          // Pareto prune within the subset: drop if dominated.
          bool dominated = false;
          for (const SubPlan& existing : cands) {
            if (existing.cost <= joined.cost &&
                SameCols(existing.part_cols, joined.part_cols) &&
                existing.broadcast == joined.broadcast) {
              dominated = true;
              break;
            }
          }
          if (dominated) continue;
          cands.erase(std::remove_if(cands.begin(), cands.end(),
                                     [&joined](const SubPlan& e) {
                                       return joined.cost <= e.cost &&
                                              SameCols(e.part_cols,
                                                       joined.part_cols) &&
                                              e.broadcast == joined.broadcast;
                                     }),
                      cands.end());
          cands.push_back(std::move(joined));
          if (s == full) {
            best_complete = std::min(best_complete, cands.back().cost);
          }
        }
      }
    }
  }
  search_stats_.memo_entries = memo.size();

  auto full_it = memo.find(full);
  if (full_it == memo.end() || full_it->second.empty()) {
    return Status::InvalidArgument("no plan found (disconnected join graph?)");
  }

  // ---- Aggregation / projection / ship on top of each full candidate -------
  bool aggregating = q.has_group_by ||
                     std::any_of(q.items.begin(), q.items.end(),
                                 [](const SelectItem& i) { return i.is_aggregate; });

  PlannedQuery best;
  double best_cost = std::numeric_limits<double>::infinity();

  for (const SubPlan& cand : full_it->second) {
    // A broadcast-only candidate (single replicated table) would produce
    // duplicate rows across nodes; restrict it to node-0 execution? Simpler:
    // skip — replicated relations are tiny lookup tables, never the sole scan.
    if (cand.broadcast) continue;

    auto finalize = [&](SubPlan sp, query::FinalStage final_stage) {
      PhysOp ship;
      ship.kind = OpKind::kShip;
      ship.children = {sp.root};
      AppendOp(&sp, std::move(ship));
      double ship_bytes = sp.rows * sp.row_bytes;
      sp.cost += ship_bytes / params_.bandwidth_bytes_per_sec * 1e6;  // initiator link
      sp.cost += sp.rows * cm.marshal_per_tuple_us / params_.cpu_speed;
      if (sp.cost < best_cost) {
        best_cost = sp.cost;
        PhysicalPlan plan;
        plan.ops = sp.ops;
        plan.root = sp.root;
        plan.final_stage = std::move(final_stage);
        best.plan = std::move(plan);
        best.estimated_cost_us = sp.cost;
        best.estimated_rows = sp.rows;
      }
    };

    if (!aggregating) {
      SubPlan sp = cand;
      // Compute the select list.
      PhysOp compute;
      compute.kind = OpKind::kCompute;
      compute.children = {sp.root};
      bool ok = true;
      for (const SelectItem& item : q.items) {
        auto remapped = Remap(item.expr, sp.out_cols);
        if (!remapped.ok()) ok = false;
        else compute.exprs.push_back(std::move(remapped).value());
      }
      if (!ok) continue;
      bool identity = false;
      AppendOp(&sp, std::move(compute));
      (void)identity;
      sp.row_bytes = sp.row_bytes;  // roughly unchanged
      query::FinalStage fs;
      for (const OrderItem& o : q.order_by) {
        fs.sort.push_back({static_cast<int32_t>(o.select_index), o.asc});
      }
      fs.limit = q.limit;
      finalize(std::move(sp), std::move(fs));
      continue;
    }

    // Aggregate layout: [group cols...][agg slot per item...][avg counts...]
    std::vector<AggSpec> slots;
    std::vector<int32_t> avg_count_slot(q.items.size(), -1);
    std::vector<int32_t> item_slot(q.items.size(), -1);
    for (size_t i = 0; i < q.items.size(); ++i) {
      const SelectItem& item = q.items[i];
      if (!item.is_aggregate) continue;
      AggSpec spec;
      spec.fn = item.agg_fn;
      spec.has_arg = item.agg_has_arg;
      spec.arg = item.expr;  // still global cols; remapped below
      item_slot[i] = static_cast<int32_t>(slots.size());
      slots.push_back(spec);
    }
    for (size_t i = 0; i < q.items.size(); ++i) {
      if (!q.items[i].is_avg) continue;
      AggSpec cnt;
      cnt.fn = query::AggFn::kCount;
      cnt.has_arg = true;
      cnt.arg = q.items[i].expr;
      avg_count_slot[i] = static_cast<int32_t>(slots.size());
      slots.push_back(cnt);
    }

    const size_t n_group = q.group_cols.size();
    auto make_agg_plan = [&](const SubPlan& input, bool locally_complete,
                             double extra_cost) -> bool {
      SubPlan sp = input;
      PhysOp agg;
      agg.kind = OpKind::kAggregate;
      agg.children = {sp.root};
      bool ok = true;
      for (int32_t g : q.group_cols) {
        auto pos = PosOf(sp.out_cols, g);
        if (!pos.ok()) ok = false;
        else agg.group_cols.push_back(*pos);
      }
      for (AggSpec spec : slots) {
        if (spec.has_arg) {
          auto remapped = Remap(spec.arg, sp.out_cols);
          if (!remapped.ok()) ok = false;
          else spec.arg = std::move(remapped).value();
        }
        agg.aggs.push_back(std::move(spec));
      }
      if (!ok) return false;
      AppendOp(&sp, std::move(agg));
      sp.cost += extra_cost + input.rows / n * cm.agg_update_us / params_.cpu_speed;
      // Group count estimate: sqrt heuristic capped by input rows.
      double groups = q.has_group_by
                          ? std::min(input.rows, 40.0 + std::sqrt(input.rows) * 4)
                          : 1.0;
      sp.rows = locally_complete ? groups : std::min(groups * n, input.rows);
      sp.row_bytes = 16.0 * static_cast<double>(n_group + slots.size());

      // The aggregate operator emits one partial row per provenance
      // sub-group (§V-D), so the initiator always re-aggregates; "locally
      // complete" strategies just ship far fewer partials.
      query::FinalStage fs;
      fs.has_agg = true;
      for (size_t g = 0; g < n_group; ++g) {
        fs.group_cols.push_back(static_cast<int32_t>(g));
      }
      for (size_t a = 0; a < slots.size(); ++a) {
        AggSpec merge;
        merge.fn = slots[a].fn;
        merge.has_arg = true;
        merge.arg = Expr::Column(static_cast<int32_t>(n_group + a));
        fs.aggs.push_back(std::move(merge));
      }
      // Post expressions: select list order over [groups..., slots...].
      fs.has_post = true;
      size_t group_seen = 0;
      for (size_t i = 0; i < q.items.size(); ++i) {
        const SelectItem& item = q.items[i];
        if (!item.is_aggregate) {
          // Position of this group col in group_cols.
          int32_t gpos = -1;
          for (size_t g = 0; g < n_group; ++g) {
            if (q.group_cols[g] == item.expr.column()) gpos = static_cast<int32_t>(g);
          }
          if (gpos < 0) return false;
          fs.post_exprs.push_back(Expr::Column(gpos));
          ++group_seen;
          continue;
        }
        int32_t slot = static_cast<int32_t>(n_group) + item_slot[i];
        if (item.is_avg) {
          fs.post_exprs.push_back(
              Expr::Arith('/', Expr::Column(slot),
                          Expr::Column(static_cast<int32_t>(n_group) +
                                       avg_count_slot[i])));
        } else {
          fs.post_exprs.push_back(Expr::Column(slot));
        }
      }
      (void)group_seen;
      for (const OrderItem& o : q.order_by) {
        fs.sort.push_back({static_cast<int32_t>(o.select_index), o.asc});
      }
      fs.limit = q.limit;
      finalize(std::move(sp), std::move(fs));
      return true;
    };

    // Strategy B: input already partitioned on a subset of the group cols —
    // groups are node-local, aggregate once, no re-aggregation.
    bool local_ok = q.has_group_by && !cand.part_cols.empty();
    if (local_ok) {
      for (int32_t p : cand.part_cols) {
        if (std::find(q.group_cols.begin(), q.group_cols.end(), p) ==
            q.group_cols.end()) {
          local_ok = false;
        }
      }
    }
    if (local_ok) make_agg_plan(cand, /*locally_complete=*/true, 0.0);

    // Strategy A: partial aggregation + re-aggregation at the initiator
    // (Table I; this is the paper's Q1 plan).
    make_agg_plan(cand, /*locally_complete=*/false, 0.0);

    // Strategy C: rehash on group columns, then aggregate locally-complete.
    // Only worthwhile when there are many groups; with a handful of groups
    // the rehash funnels the whole input into a few nodes (hash skew) and
    // partial aggregation (strategy A) dominates — the paper's Q1 plan.
    double groups_est = 1.0;
    for (int32_t g : q.group_cols) {
      uint32_t t = table_of_col(g);
      const RelationStats rs = stats_of(q.tables[t].relation);
      uint32_t col = static_cast<uint32_t>(g) - q.tables[t].first_column;
      double d = (col < rs.column_distinct.size() && rs.column_distinct[col] > 0)
                     ? static_cast<double>(rs.column_distinct[col])
                     : 40.0 + std::sqrt(cand.rows) * 4;
      groups_est *= d;
    }
    groups_est = std::min(groups_est, cand.rows);
    if (q.has_group_by && groups_est > 8.0 * n) {
      SubPlan rehashed;
      if (ensure_partitioned(cand, q.group_cols, &rehashed) &&
          !SameCols(rehashed.part_cols, cand.part_cols)) {
        make_agg_plan(rehashed, /*locally_complete=*/true, 0.0);
      }
    }
  }

  if (best.plan.ops.empty()) return Status::InvalidArgument("no viable plan");
  ORC_RETURN_IF_ERROR(best.plan.Validate());
  return best;
}

}  // namespace orchestra::optimizer
