// Volcano-style query optimizer (§VI, "Query Optimizer"): top-down plan
// enumeration with memoization over table subsets, branch-and-bound pruning
// against the best complete plan, bushy and linear join trees, and a cost
// model that charges each pipeline stage at the slowest node/link that must
// participate (with the paper's uniform-partitioning assumption).
//
// Physical properties tracked per candidate:
//   * hash-partitioning columns (a join requires both inputs partitioned on
//     its keys; relations partitioned on their storage key get this for free
//     — the Fig. 6 "S is not rehashed" optimization),
//   * broadcast (replicate-everywhere relations scanned fully at each node).
#ifndef ORCHESTRA_OPTIMIZER_OPTIMIZER_H_
#define ORCHESTRA_OPTIMIZER_OPTIMIZER_H_

#include <string>

#include "optimizer/logical.h"
#include "query/plan.h"
#include "sim/cost_model.h"

namespace orchestra::optimizer {

/// Deployment-level knobs for costing (the paper's optimizer stores machine
/// CPU/disk performance and pairwise bandwidth).
struct CostParams {
  size_t num_nodes = 4;
  double cpu_speed = 1.0;                    // relative to the cost model's unit
  double bandwidth_bytes_per_sec = 125.0e6;  // slowest link
  double latency_us = 100;
  const sim::CostModel* costs = &sim::CostModel::Default();
};

struct PlannedQuery {
  query::PhysicalPlan plan;
  double estimated_cost_us = 0;
  double estimated_rows = 0;
};

class Optimizer {
 public:
  Optimizer(StatsCatalog stats, CostParams params)
      : stats_(std::move(stats)), params_(params) {}

  /// Plans an analyzed single-block query into a distributed physical plan.
  Result<PlannedQuery> Plan(const AnalyzedQuery& q);

  /// Statistics observed during the last Plan() call (for tests/ablations).
  struct SearchStats {
    size_t memo_entries = 0;
    size_t candidates_generated = 0;
    size_t pruned_by_bound = 0;
  };
  const SearchStats& search_stats() const { return search_stats_; }

 private:
  StatsCatalog stats_;
  CostParams params_;
  SearchStats search_stats_;
};

}  // namespace orchestra::optimizer

#endif  // ORCHESTRA_OPTIMIZER_OPTIMIZER_H_
