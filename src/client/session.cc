#include "client/session.h"

#include <algorithm>

namespace orchestra::client {

/// Shared session core. Publisher callbacks capture this by shared_ptr, so a
/// Session destroyed with work in flight stays safe: late completions land
/// in the Impl (resolving their tickets) instead of a dead object.
struct Session::Impl {
  storage::StorageService* storage = nullptr;
  storage::Publisher* publisher = nullptr;
  query::QueryService* query = nullptr;
  SessionOptions opts;

  struct Entry {
    uint64_t id = 0;
    storage::UpdateBatch batch;  // moved out at launch
    Pending<storage::Epoch> ticket;
    storage::Publisher::Handle handle;  // retained until resolution
  };

  uint64_t next_id = 1;
  std::deque<std::shared_ptr<Entry>> queue;      // submitted, not launched
  std::vector<std::shared_ptr<Entry>> inflight;  // launched, unresolved
  // Chain tail: the most recently launched publish; the next launch chains
  // onto it (the publisher falls back to discovery if it already resolved).
  storage::Publisher::Handle chain_tail;
  size_t effective_window = 1;
  storage::Epoch last_epoch = 0;
  std::vector<Pending<storage::Epoch>> flush_waiters;
  Stats stats;
  bool pumping = false;
  bool repump = false;
};

Session::Session(storage::StorageService* storage, storage::Publisher* publisher,
                 query::QueryService* query, SessionOptions options)
    : impl_(std::make_shared<Impl>()) {
  impl_->storage = storage;
  impl_->publisher = publisher;
  impl_->query = query;
  impl_->opts = options;
  impl_->opts.max_window = std::max<size_t>(1, impl_->opts.max_window);
  if (options.participant != 0) publisher->set_participant(options.participant);
  impl_->effective_window =
      impl_->opts.pipeline ? impl_->opts.max_window : 1;
  impl_->stats.min_window_seen = impl_->effective_window;
}

Session::~Session() {
  // Break the ticket <-> publish-state retention cycle for anything still
  // unresolved; the publisher's own callbacks keep working against the
  // shared Impl if the simulation is driven further.
  AbortInFlight(Status::Aborted("session destroyed"));
}

namespace {

/// Admission control: sample the worst recent peer load hint and adapt the
/// window — halve on a high-watermark breach (multiplicative decrease), grow
/// one step once load clears the low watermark (additive increase).
void UpdateWindow(const std::shared_ptr<Session::Impl>& im) {
  size_t max_window = im->opts.pipeline ? im->opts.max_window : 1;
  uint32_t load = im->storage->MaxRecentPeerLoad();
  if (load >= im->opts.load_high_watermark) {
    if (im->effective_window > 1) {
      im->effective_window = std::max<size_t>(1, im->effective_window / 2);
      im->stats.throttle_shrinks += 1;
    }
  } else if (load <= im->opts.load_low_watermark &&
             im->effective_window < max_window) {
    im->effective_window += 1;
    im->stats.window_grows += 1;
  }
  im->effective_window = std::min(im->effective_window, max_window);
  im->stats.min_window_seen =
      std::min(im->stats.min_window_seen, im->effective_window);
}

void MaybeResolveFlush(const std::shared_ptr<Session::Impl>& im) {
  if (!im->inflight.empty() || !im->queue.empty()) return;
  // Swap before resolving: a waiter's continuation may re-enter the session
  // (Submit + Flush), registering new waiters that belong to the NEXT
  // barrier, not this one.
  std::vector<Pending<storage::Epoch>> ready;
  ready.swap(im->flush_waiters);
  for (auto& w : ready) w.Resolve(Status::OK(), im->last_epoch);
}

void RemoveInflight(const std::shared_ptr<Session::Impl>& im,
                    const std::shared_ptr<Session::Impl::Entry>& e) {
  auto it = std::find(im->inflight.begin(), im->inflight.end(), e);
  if (it != im->inflight.end()) im->inflight.erase(it);
}

void Pump(const std::shared_ptr<Session::Impl>& im);

/// A publish failed: the pipeline behind it is unusable (in-flight
/// successors abort themselves at their write gates; queued batches would
/// chain onto a broken base), so the whole suffix resolves with an error and
/// the caller re-submits it in order. This keeps the epoch -> batch mapping
/// stable across retries — the invariant GC's orphan reasoning rests on.
void FailSuffix(const std::shared_ptr<Session::Impl>& im, const Status& why) {
  im->chain_tail.reset();
  std::deque<std::shared_ptr<Session::Impl::Entry>> cancelled;
  cancelled.swap(im->queue);
  for (auto& e : cancelled) {
    im->stats.failed += 1;
    e->ticket.Resolve(Status::Aborted("cancelled: earlier publish failed: " +
                                      why.ToString()));
  }
}

void Launch(const std::shared_ptr<Session::Impl>& im,
            std::shared_ptr<Session::Impl::Entry> e) {
  im->inflight.push_back(e);
  im->stats.max_in_flight = std::max(im->stats.max_in_flight, im->inflight.size());
  storage::Publisher::Handle prev =
      im->opts.pipeline ? im->chain_tail : storage::Publisher::Handle();
  e->handle = im->publisher->PublishChained(
      std::move(e->batch), std::move(prev),
      [im, e](Status st, storage::Epoch epoch) {
        RemoveInflight(im, e);
        if (e->ticket.done()) {
          // Already aborted (AbortInFlight) — the late completion is noise.
        } else if (st.ok()) {
          im->last_epoch = epoch;
          im->stats.committed += 1;
          e->ticket.Resolve(Status::OK(), epoch);
        } else {
          im->stats.failed += 1;
          FailSuffix(im, st);
          e->ticket.Resolve(st);
        }
        e->handle.reset();
        MaybeResolveFlush(im);
        Pump(im);
      });
  im->chain_tail = e->handle;
}

void Pump(const std::shared_ptr<Session::Impl>& im) {
  // Trampoline: publisher callbacks can fire synchronously (validation
  // errors, empty catalogs) and re-enter Pump from inside Launch.
  if (im->pumping) {
    im->repump = true;
    return;
  }
  im->pumping = true;
  do {
    im->repump = false;
    while (!im->queue.empty() && im->inflight.size() < im->effective_window) {
      UpdateWindow(im);
      if (im->inflight.size() >= im->effective_window) break;
      auto e = im->queue.front();
      im->queue.pop_front();
      Launch(im, e);
    }
    MaybeResolveFlush(im);
  } while (im->repump);
  im->pumping = false;
}

}  // namespace

Ticket Session::Submit(storage::UpdateBatch batch) {
  auto e = std::make_shared<Impl::Entry>();
  e->id = impl_->next_id++;
  e->batch = std::move(batch);
  impl_->stats.submitted += 1;
  impl_->queue.push_back(e);
  Pump(impl_);
  return Ticket{e->id, e->ticket};
}

Pending<storage::Epoch> Session::Flush() {
  Pending<storage::Epoch> p;
  if (impl_->inflight.empty() && impl_->queue.empty()) {
    p.Resolve(Status::OK(), impl_->last_epoch);
    return p;
  }
  impl_->flush_waiters.push_back(p);
  return p;
}

Pending<std::monostate> Session::CreateRelation(const storage::RelationDef& def) {
  Pending<std::monostate> p;
  impl_->publisher->CreateRelation(def, [p](Status st) mutable {
    p.Resolve(std::move(st));
  });
  return p;
}

Pending<std::vector<storage::Tuple>> Session::Retrieve(
    const std::string& relation, storage::Epoch epoch,
    storage::KeyFilter filter) {
  Pending<std::vector<storage::Tuple>> p;
  impl_->storage->Retrieve(relation, epoch, filter,
                           [p](Status st, std::vector<storage::Tuple> rows) mutable {
                             p.Resolve(std::move(st), std::move(rows));
                           });
  return p;
}

Pending<query::QueryResult> Session::Query(const query::PhysicalPlan& plan,
                                           storage::Epoch epoch,
                                           query::QueryOptions options) {
  Pending<query::QueryResult> p;
  if (impl_->query == nullptr) {
    p.Resolve(Status::FailedPrecondition("session has no query service"));
    return p;
  }
  impl_->query->Execute(plan, epoch, options,
                        [p](Status st, query::QueryResult result) mutable {
                          p.Resolve(std::move(st), std::move(result));
                        });
  return p;
}

void Session::AbortInFlight(Status why) {
  auto im = impl_;
  im->chain_tail.reset();
  std::vector<std::shared_ptr<Impl::Entry>> flying;
  flying.swap(im->inflight);
  for (auto& e : flying) {
    e->handle.reset();
    if (!e->ticket.done()) {
      im->stats.failed += 1;
      e->ticket.Resolve(why);
    }
  }
  std::deque<std::shared_ptr<Impl::Entry>> waiting;
  waiting.swap(im->queue);
  for (auto& e : waiting) {
    if (!e->ticket.done()) {
      im->stats.failed += 1;
      e->ticket.Resolve(why);
    }
  }
  MaybeResolveFlush(im);
}

size_t Session::in_flight() const { return impl_->inflight.size(); }
size_t Session::queued() const { return impl_->queue.size(); }
size_t Session::window() const { return impl_->effective_window; }
storage::ParticipantId Session::participant() const {
  return impl_->publisher->participant();
}
storage::Epoch Session::last_epoch() const { return impl_->last_epoch; }
storage::StorageService* Session::storage() const { return impl_->storage; }
const Session::Stats& Session::stats() const { return impl_->stats; }

}  // namespace orchestra::client
