// client::Session — the single participant-facing API of the system. A
// session is pinned to one node and unifies what used to be three ad-hoc
// layers (Publisher's raw callbacks, StorageService's per-RPC entry points,
// Deployment's synchronous conveniences) behind four verbs:
//
//   Submit(UpdateBatch) -> Ticket          queue a versioned write batch
//   Flush()             -> Pending<Epoch>  barrier: all submitted work done
//   Retrieve(...)       -> Pending<rows>   Algorithm 1 read at an epoch
//   Query(...)          -> Pending<result> distributed query execution
//
// Every verb returns a Pending<T> (src/common/pending.h) instead of a bare
// callback; exactly-once completion is inherited from the RPC lifecycle
// layer underneath.
//
// Pipelining: the session keeps up to `max_window` publishes in flight.
// Submitted batches form a FIFO chain — publish N+1 bases itself on publish
// N's in-memory output (Publisher::PublishChained), overlapping its
// fetch/partition/apply stages with N's tuple/page writes while commits stay
// strictly ordered. On a failure the failed ticket AND everything behind it
// (in flight or queued) resolves with an error and the chain resets: the
// caller re-submits the failed suffix in order (same batches — publishing is
// idempotent per batch), exactly the retry discipline the GC sweep's
// same-batch precondition requires.
//
// Admission control: every storage RPC reply carries the responder's load
// hint (its inbox depth). When the worst recent hint crosses
// `load_high_watermark` the session halves its window (down to 1) before
// launching more work; when load falls below `load_low_watermark` the window
// recovers one step per launch opportunity. No submitted batch is ever
// dropped by throttling — it just waits in the queue.
//
// Multi-writer: a session publishes for exactly one PARTICIPANT
// (SessionOptions::participant; 0 keeps the publisher's default of
// node id + 1). Two-plus sessions with distinct participants may publish
// concurrently against one deployment: each publish claims its epoch before
// writing, and a session that loses an epoch race transparently RE-BASES the
// losing publish (and the pipelined chain behind it) onto the winner's
// committed output — the ticket simply resolves with a later epoch than an
// uncontended run would have produced. Contention never tears an epoch (the
// claim plus the participant-tagged commit gate guarantee one writer per
// epoch) and never reorders this session's own commits. Sessions sharing one
// node's publisher share its participant; give concurrent writers distinct
// nodes or distinct participant ids.
//
// Thread/ordering contract: the whole client stack is single-threaded on the
// simulator loop. Submit/Flush/Retrieve/Query must be called from that
// thread; Pending continuations and ticket resolutions run on it, in
// resolution order. Tickets of one session resolve in submission order for
// successes; a failure resolves the failed ticket and everything behind it
// (Aborted) before Submit returns new work.
#ifndef ORCHESTRA_CLIENT_SESSION_H_
#define ORCHESTRA_CLIENT_SESSION_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/pending.h"
#include "query/service.h"
#include "storage/publisher.h"
#include "storage/service.h"

namespace orchestra::client {

struct SessionOptions {
  /// Participant identity this session publishes as. 0 keeps the publisher's
  /// default (node id + 1). Distinct concurrent writers need distinct
  /// participants; a non-zero value is installed on the session's publisher
  /// at construction (one publisher = one participant).
  storage::ParticipantId participant = 0;
  /// Max publishes in flight. >1 enables pipelined chaining; 1 reproduces
  /// the legacy one-at-a-time behavior exactly.
  size_t max_window = 4;
  /// Disables chaining (forces an effective window of 1) without changing
  /// the API — the deprecation-shim equivalence knob.
  bool pipeline = true;
  /// Shrink the window when any peer's recent load hint reaches this.
  uint32_t load_high_watermark = 192;
  /// Grow the window back once the worst recent hint is at or below this.
  uint32_t load_low_watermark = 48;
};

/// A submitted publish. `epoch` resolves with the committed epoch, or with
/// the publish's error (Aborted when an earlier ticket in the pipeline
/// failed and this one was cancelled before writing anything).
struct Ticket {
  uint64_t id = 0;
  Pending<storage::Epoch> epoch;
};

class Session {
 public:
  /// Internal shared core (defined in session.cc); public only so the
  /// implementation's helpers can name it.
  struct Impl;

  /// `query` may be null for storage-only deployments; Query() then fails.
  Session(storage::StorageService* storage, storage::Publisher* publisher,
          query::QueryService* query = nullptr, SessionOptions options = {});
  /// Destroying a session with work in flight aborts its unresolved tickets
  /// (AbortInFlight) — late publisher completions then land harmlessly in
  /// the shared core instead of keeping abandoned state alive.
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Queues one batch for publishing; launches immediately if the window has
  /// room. Tickets commit (and resolve) strictly in submission order.
  Ticket Submit(storage::UpdateBatch batch);

  /// Barrier: resolves once every previously submitted ticket has resolved
  /// (successfully or not), with the last committed epoch. Per-ticket status
  /// stays authoritative for failures.
  Pending<storage::Epoch> Flush();

  /// Registers a relation cluster-wide (catalog + empty coordinator record).
  Pending<std::monostate> CreateRelation(const storage::RelationDef& def);

  /// Algorithm 1: Retrieve(R, e, f) from this session's node.
  Pending<std::vector<storage::Tuple>> Retrieve(const std::string& relation,
                                                storage::Epoch epoch,
                                                storage::KeyFilter filter = {});

  /// Distributed query from this session's node. `epoch` 0 = current.
  Pending<query::QueryResult> Query(const query::PhysicalPlan& plan,
                                    storage::Epoch epoch = 0,
                                    query::QueryOptions options = {});

  /// Fails every unresolved ticket (queued or in flight) with `why` and
  /// resets the pipeline chain. Used when the session's node dies: the
  /// node's dropped callbacks would otherwise leave tickets pending forever.
  void AbortInFlight(Status why);

  // --- Introspection --------------------------------------------------------
  size_t in_flight() const;
  size_t queued() const;
  /// Current effective window (admission control may hold it below max).
  size_t window() const;
  /// The participant identity this session publishes as.
  storage::ParticipantId participant() const;
  storage::Epoch last_epoch() const;
  storage::StorageService* storage() const;

  struct Stats {
    uint64_t submitted = 0;
    uint64_t committed = 0;
    uint64_t failed = 0;          // includes pipeline-abort cancellations
    uint64_t throttle_shrinks = 0;  // window halvings on load-hint breach
    uint64_t window_grows = 0;
    size_t min_window_seen = 0;   // smallest effective window used
    size_t max_in_flight = 0;
  };
  const Stats& stats() const;

 private:
  std::shared_ptr<Impl> impl_;
};

}  // namespace orchestra::client

#endif  // ORCHESTRA_CLIENT_SESSION_H_
