#include "overlay/gossip.h"

#include <algorithm>

#include "common/serial.h"

namespace orchestra::overlay {

GossipService::GossipService(net::NodeHost* host, std::vector<net::NodeId> peers,
                             uint64_t seed, sim::SimTime interval_us)
    : host_(host), peers_(std::move(peers)), rng_(seed), interval_us_(interval_us) {
  peers_.erase(std::remove(peers_.begin(), peers_.end(), host_->node()), peers_.end());
  host_->Register(net::ServiceId::kGossip, this);
}

void GossipService::Start() {
  if (running_) return;
  running_ = true;
  // Desynchronize nodes' timers with a random initial offset.
  sim::SimTime offset = static_cast<sim::SimTime>(rng_.Uniform(interval_us_ + 1));
  host_->network()->RunOnNode(host_->node(),
                              host_->network()->simulator()->now() + offset,
                              [this] { Tick(); });
}

void GossipService::AdvanceTo(uint64_t epoch) { epoch_ = std::max(epoch_, epoch); }

void GossipService::ResetPeers(std::vector<net::NodeId> peers) {
  peers_ = std::move(peers);
  peers_.erase(std::remove(peers_.begin(), peers_.end(), host_->node()), peers_.end());
}

void GossipService::Tick() {
  if (!running_) return;
  if (!peers_.empty()) {
    net::NodeId peer = peers_[rng_.Uniform(peers_.size())];
    Writer w;
    w.PutU64(epoch_);
    host_->SendTo(peer, net::ServiceId::kGossip, kPush, w.Release());
  }
  host_->network()->RunOnNode(host_->node(),
                              host_->network()->simulator()->now() + interval_us_,
                              [this] { Tick(); });
}

void GossipService::OnMessage(net::NodeId from, uint16_t code,
                              const std::string& payload) {
  Reader r(payload);
  uint64_t theirs = 0;
  if (!r.GetU64(&theirs).ok()) return;
  if (code == kPush && epoch_ > theirs) {
    // Pull half of push-pull: tell the sender about the newer epoch.
    Writer w;
    w.PutU64(epoch_);
    host_->SendTo(from, net::ServiceId::kGossip, kPushPullReply, w.Release());
  }
  epoch_ = std::max(epoch_, theirs);
}

void GossipService::OnConnectionDrop(net::NodeId peer) {
  peers_.erase(std::remove(peers_.begin(), peers_.end(), peer), peers_.end());
}

}  // namespace orchestra::overlay
