// The hashing-based substrate (§III): key-space partitioning over the 160-bit
// SHA-1 ring, with two allocation schemes:
//
//  * kPastry   — each node owns the keys nearest its hash ID (Fig. 2a). Used
//                for large networks; highly non-uniform at small n.
//  * kBalanced — the key space is divided into equal sequential ranges, one
//                per node, assigned in node-hash order (Fig. 2b). The paper
//                uses this for all experiments; a node owns ONE large
//                contiguous range, which keeps index pages co-located with
//                their tuples (§IV).
//
// A RoutingSnapshot is the complete routing table (every node, single-hop,
// per [13]) frozen at a version. Queries always run against a snapshot so
// membership changes cannot re-route mid-computation (§III-C, §V-C).
#ifndef ORCHESTRA_OVERLAY_RING_H_
#define ORCHESTRA_OVERLAY_RING_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "hash/hash_id.h"
#include "net/network.h"

namespace orchestra::overlay {

enum class AllocationScheme : uint8_t { kBalanced = 0, kPastry = 1 };

/// One contiguous clockwise range [begin, end_of_next_entry) owned by a node.
struct RangeEntry {
  HashId begin;
  net::NodeId owner = net::kInvalidNode;
};

/// A member of the overlay: network node + its position hash (SHA-1 of its
/// name/address, per §III-A).
struct Member {
  net::NodeId node = net::kInvalidNode;
  HashId position;
};

/// Immutable complete routing table at a version.
class RoutingSnapshot {
 public:
  RoutingSnapshot() = default;

  /// Builds the allocation for `members` under `scheme`. Members need not be
  /// sorted. Precondition: non-empty, distinct positions.
  static RoutingSnapshot Build(uint64_t version, AllocationScheme scheme,
                               std::vector<Member> members);

  uint64_t version() const { return version_; }
  AllocationScheme scheme() const { return scheme_; }

  /// The node owning `key` (last entry whose begin <= key, wrapping).
  net::NodeId OwnerOf(const HashId& key) const;
  /// The clockwise range [begin, end) owned around `key`.
  std::pair<HashId, HashId> RangeOf(const HashId& key) const;

  /// Replica set for `key` with replication factor r: the owner plus ⌊r/2⌋
  /// range-owners clockwise and ⌊r/2⌋ counterclockwise (§III-C). Result is
  /// deduplicated and starts with the owner.
  std::vector<net::NodeId> ReplicasOf(const HashId& key, int replication) const;

  /// All ranges assigned to `node` (balanced: exactly one; pastry: one).
  std::vector<std::pair<HashId, HashId>> RangesOwnedBy(net::NodeId node) const;

  const std::vector<RangeEntry>& entries() const { return entries_; }
  const std::vector<Member>& members() const { return members_; }  // ring order
  size_t node_count() const { return members_.size(); }
  bool Contains(net::NodeId node) const;
  /// Index of `node` in ring order, or nullopt.
  std::optional<size_t> RingIndexOf(net::NodeId node) const;

  void EncodeTo(Writer* w) const;
  static Result<RoutingSnapshot> Decode(Reader* r);

  /// Derives the table used for incremental recovery (§V-D stage 1): ranges
  /// owned by nodes in `failed` are reassigned to live replicas, dividing
  /// each failed range evenly among them. Version bumps to `new_version`.
  RoutingSnapshot ReassignFailed(const std::vector<net::NodeId>& failed,
                                 int replication, uint64_t new_version) const;

  std::string ToString() const;

 private:
  uint64_t version_ = 0;
  AllocationScheme scheme_ = AllocationScheme::kBalanced;
  std::vector<RangeEntry> entries_;  // sorted by begin
  std::vector<Member> members_;      // sorted by position (ring order)
};

/// Mutable membership view held by the substrate; produces snapshots.
class Ring {
 public:
  explicit Ring(AllocationScheme scheme) : scheme_(scheme) {}

  /// Adds a node, hashing `name` for its ring position.
  void Join(net::NodeId node, const std::string& name);
  /// Adds a node at an explicit position (tests).
  void JoinAt(net::NodeId node, const HashId& position);
  void Leave(net::NodeId node);
  bool IsMember(net::NodeId node) const;
  size_t size() const { return members_.size(); }

  /// Builds a snapshot of the current membership; bumps the version.
  RoutingSnapshot TakeSnapshot();
  uint64_t current_version() const { return version_; }

 private:
  AllocationScheme scheme_;
  std::vector<Member> members_;
  uint64_t version_ = 0;
};

}  // namespace orchestra::overlay

#endif  // ORCHESTRA_OVERLAY_RING_H_
