// Epoch gossip (§IV): "The current epoch can be determined through a simple
// 'gossip' protocol and does not require a single point of failure." Each
// node keeps the highest epoch it has heard of; periodically it push-pulls
// with a random peer. A publisher advances its own counter, and the new epoch
// spreads in O(log n) rounds.
#ifndef ORCHESTRA_OVERLAY_GOSSIP_H_
#define ORCHESTRA_OVERLAY_GOSSIP_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "net/node_host.h"

namespace orchestra::overlay {

class GossipService : public net::Service {
 public:
  /// `peers` is the full membership (complete routing tables make it known).
  GossipService(net::NodeHost* host, std::vector<net::NodeId> peers, uint64_t seed,
                sim::SimTime interval_us = 500 * sim::kMicrosPerMilli);

  /// Begins the periodic gossip timer.
  void Start();
  void Stop() { running_ = false; }

  uint64_t epoch() const { return epoch_; }
  /// Local advance (called when this participant publishes a batch).
  void AdvanceTo(uint64_t epoch);

  /// Replaces the peer list (self is filtered out). Membership changes erase
  /// dropped peers permanently; a restart re-seeds everyone's lists.
  void ResetPeers(std::vector<net::NodeId> peers);

  void OnMessage(net::NodeId from, uint16_t code, const std::string& payload) override;
  void OnConnectionDrop(net::NodeId peer) override;

 private:
  enum Code : uint16_t { kPush = 1, kPushPullReply = 2 };

  void Tick();

  net::NodeHost* host_;
  std::vector<net::NodeId> peers_;
  Rng rng_;
  sim::SimTime interval_us_;
  uint64_t epoch_ = 0;
  bool running_ = false;
};

}  // namespace orchestra::overlay

#endif  // ORCHESTRA_OVERLAY_GOSSIP_H_
