#include "overlay/ring.h"

#include <algorithm>
#include <cassert>

#include "common/log.h"
#include "common/serial.h"

namespace orchestra::overlay {

RoutingSnapshot RoutingSnapshot::Build(uint64_t version, AllocationScheme scheme,
                                       std::vector<Member> members) {
  ORC_CHECK(!members.empty(), "cannot build routing table with no members");
  std::sort(members.begin(), members.end(),
            [](const Member& a, const Member& b) { return a.position < b.position; });

  RoutingSnapshot snap;
  snap.version_ = version;
  snap.scheme_ = scheme;
  snap.members_ = members;

  const size_t n = members.size();
  snap.entries_.reserve(n);

  if (scheme == AllocationScheme::kBalanced || n == 1) {
    // Equal sequential ranges in node-hash order (Fig. 2b).
    HashId partition = HashId::SpacePartition(static_cast<uint32_t>(n));
    for (size_t i = 0; i < n; ++i) {
      snap.entries_.push_back(
          RangeEntry{partition.MultiplyBy(static_cast<uint32_t>(i)), members[i].node});
    }
  } else {
    // Pastry-style: node owns the keys nearest its position (Fig. 2a); the
    // boundary between ring-adjacent nodes is the clockwise midpoint.
    for (size_t i = 0; i < n; ++i) {
      const Member& prev = members[(i + n - 1) % n];
      const Member& cur = members[i];
      HashId begin = prev.position.ClockwiseMidpoint(cur.position);
      snap.entries_.push_back(RangeEntry{begin, cur.node});
    }
    std::sort(snap.entries_.begin(), snap.entries_.end(),
              [](const RangeEntry& a, const RangeEntry& b) { return a.begin < b.begin; });
  }
  return snap;
}

net::NodeId RoutingSnapshot::OwnerOf(const HashId& key) const {
  ORC_CHECK(!entries_.empty(), "empty routing table");
  // Last entry with begin <= key; keys before the first entry wrap to the last.
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), key,
      [](const HashId& k, const RangeEntry& e) { return k < e.begin; });
  if (it == entries_.begin()) return entries_.back().owner;
  return std::prev(it)->owner;
}

std::pair<HashId, HashId> RoutingSnapshot::RangeOf(const HashId& key) const {
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), key,
      [](const HashId& k, const RangeEntry& e) { return k < e.begin; });
  size_t idx = (it == entries_.begin()) ? entries_.size() - 1
                                        : static_cast<size_t>(std::prev(it) - entries_.begin());
  HashId begin = entries_[idx].begin;
  HashId end = entries_[(idx + 1) % entries_.size()].begin;
  return {begin, end};
}

std::vector<net::NodeId> RoutingSnapshot::ReplicasOf(const HashId& key,
                                                     int replication) const {
  const size_t n = entries_.size();
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), key,
      [](const HashId& k, const RangeEntry& e) { return k < e.begin; });
  size_t idx = (it == entries_.begin()) ? n - 1
                                        : static_cast<size_t>(std::prev(it) - entries_.begin());

  std::vector<net::NodeId> replicas;
  auto add = [&replicas](net::NodeId id) {
    if (std::find(replicas.begin(), replicas.end(), id) == replicas.end()) {
      replicas.push_back(id);
    }
  };
  add(entries_[idx].owner);
  int half = replication / 2;
  for (int j = 1; j <= half; ++j) {
    add(entries_[(idx + j) % n].owner);              // clockwise
    add(entries_[(idx + n - (j % n)) % n].owner);    // counterclockwise
  }
  return replicas;
}

std::vector<std::pair<HashId, HashId>> RoutingSnapshot::RangesOwnedBy(
    net::NodeId node) const {
  std::vector<std::pair<HashId, HashId>> out;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].owner == node) {
      out.emplace_back(entries_[i].begin, entries_[(i + 1) % entries_.size()].begin);
    }
  }
  return out;
}

bool RoutingSnapshot::Contains(net::NodeId node) const {
  for (const auto& m : members_)
    if (m.node == node) return true;
  return false;
}

std::optional<size_t> RoutingSnapshot::RingIndexOf(net::NodeId node) const {
  for (size_t i = 0; i < members_.size(); ++i) {
    if (members_[i].node == node) return i;
  }
  return std::nullopt;
}

void RoutingSnapshot::EncodeTo(Writer* w) const {
  w->PutU64(version_);
  w->PutU8(static_cast<uint8_t>(scheme_));
  w->PutVarint64(members_.size());
  for (const auto& m : members_) {
    w->PutU32(m.node);
    m.position.EncodeTo(w);
  }
  w->PutVarint64(entries_.size());
  for (const auto& e : entries_) {
    e.begin.EncodeTo(w);
    w->PutU32(e.owner);
  }
}

Result<RoutingSnapshot> RoutingSnapshot::Decode(Reader* r) {
  RoutingSnapshot snap;
  ORC_RETURN_IF_ERROR(r->GetU64(&snap.version_));
  uint8_t scheme;
  ORC_RETURN_IF_ERROR(r->GetU8(&scheme));
  snap.scheme_ = static_cast<AllocationScheme>(scheme);
  uint64_t n;
  ORC_RETURN_IF_ERROR(r->GetVarint64(&n));
  snap.members_.resize(n);
  for (auto& m : snap.members_) {
    ORC_RETURN_IF_ERROR(r->GetU32(&m.node));
    ORC_RETURN_IF_ERROR(HashId::DecodeFrom(r, &m.position));
  }
  uint64_t e;
  ORC_RETURN_IF_ERROR(r->GetVarint64(&e));
  snap.entries_.resize(e);
  for (auto& entry : snap.entries_) {
    ORC_RETURN_IF_ERROR(HashId::DecodeFrom(r, &entry.begin));
    ORC_RETURN_IF_ERROR(r->GetU32(&entry.owner));
  }
  return snap;
}

RoutingSnapshot RoutingSnapshot::ReassignFailed(const std::vector<net::NodeId>& failed,
                                                int replication,
                                                uint64_t new_version) const {
  auto is_failed = [&failed](net::NodeId id) {
    return std::find(failed.begin(), failed.end(), id) != failed.end();
  };

  RoutingSnapshot snap;
  snap.version_ = new_version;
  snap.scheme_ = scheme_;
  for (const auto& m : members_) {
    if (!is_failed(m.node)) snap.members_.push_back(m);
  }
  ORC_CHECK(!snap.members_.empty(), "all nodes failed");

  const size_t n = entries_.size();
  for (size_t i = 0; i < n; ++i) {
    const RangeEntry& entry = entries_[i];
    if (!is_failed(entry.owner)) {
      snap.entries_.push_back(entry);
      continue;
    }
    HashId begin = entry.begin;
    HashId end = entries_[(i + 1) % n].begin;

    // The live holders of this range's replicas: ring neighbors at distance
    // <= ⌊r/2⌋ (§III-C). Divide the range evenly among them (§V-D stage 1).
    std::vector<net::NodeId> heirs;
    int half = replication / 2;
    for (int j = 1; j <= half && heirs.size() < n; ++j) {
      net::NodeId cw = entries_[(i + j) % n].owner;
      net::NodeId ccw = entries_[(i + n - (j % n)) % n].owner;
      for (net::NodeId cand : {cw, ccw}) {
        if (!is_failed(cand) &&
            std::find(heirs.begin(), heirs.end(), cand) == heirs.end()) {
          heirs.push_back(cand);
        }
      }
    }
    if (heirs.empty()) {
      // No live replica within the replication neighborhood: fall back to the
      // nearest live clockwise owner (data for this range may be lost, but
      // the key space must stay fully covered).
      for (size_t j = 1; j < n; ++j) {
        net::NodeId cand = entries_[(i + j) % n].owner;
        if (!is_failed(cand)) {
          heirs.push_back(cand);
          break;
        }
      }
    }
    ORC_CHECK(!heirs.empty(), "no live heir for failed range");
    std::sort(heirs.begin(), heirs.end());

    uint32_t k = static_cast<uint32_t>(heirs.size());
    HashId width = end.Sub(begin).DivideBy(k);
    for (uint32_t j = 0; j < k; ++j) {
      snap.entries_.push_back(RangeEntry{begin.Add(width.MultiplyBy(j)), heirs[j]});
    }
  }

  std::sort(snap.entries_.begin(), snap.entries_.end(),
            [](const RangeEntry& a, const RangeEntry& b) { return a.begin < b.begin; });
  return snap;
}

std::string RoutingSnapshot::ToString() const {
  std::string s = "RoutingSnapshot v" + std::to_string(version_) + " {";
  for (const auto& e : entries_) {
    s += "\n  [" + e.begin.ToShortHex() + "..) -> n" + std::to_string(e.owner);
  }
  s += "\n}";
  return s;
}

void Ring::Join(net::NodeId node, const std::string& name) {
  JoinAt(node, HashId::OfBytes(name));
}

void Ring::JoinAt(net::NodeId node, const HashId& position) {
  ORC_CHECK(!IsMember(node), "node already in ring");
  members_.push_back(Member{node, position});
}

void Ring::Leave(net::NodeId node) {
  members_.erase(std::remove_if(members_.begin(), members_.end(),
                                [node](const Member& m) { return m.node == node; }),
                 members_.end());
}

bool Ring::IsMember(net::NodeId node) const {
  return std::any_of(members_.begin(), members_.end(),
                     [node](const Member& m) { return m.node == node; });
}

RoutingSnapshot Ring::TakeSnapshot() {
  ++version_;
  return RoutingSnapshot::Build(version_, scheme_, members_);
}

}  // namespace orchestra::overlay
