// Failover drill (operations view of §V-D / Fig. 21): run the same join
// query while killing a node at increasing points in its lifetime, and
// compare full restart against incremental recomputation.
//
//   build/examples/failover_drill
#include <cstdio>

#include "optimizer/optimizer.h"
#include "sql/parser.h"
#include "workload/tpch.h"

using namespace orchestra;

namespace {

double RunWithFailure(deploy::Deployment& dep, const query::PhysicalPlan& plan,
                      storage::Epoch epoch, query::QueryOptions::RecoveryMode mode,
                      sim::SimTime fail_at, net::NodeId victim) {
  bool done = false;
  query::QueryResult result;
  query::QueryOptions opts;
  opts.recovery = mode;
  dep.query(0).Execute(plan, epoch, opts, [&](Status st, query::QueryResult r) {
    if (st.ok()) result = std::move(r);
    done = true;
  });
  dep.RunFor(fail_at);
  if (!done) dep.KillNode(victim, /*update_routing=*/false);
  dep.RunUntil([&] { return done; }, 3600 * sim::kMicrosPerSec);
  return result.execution_us / 1e6;
}

}  // namespace

int main() {
  workload::TpchConfig cfg;
  cfg.scale_factor = 0.008;
  cfg.num_partitions = 32;
  auto rels = workload::TpchGenerate(cfg);

  // Builds a fresh healthy cluster and plans Q10 on it (each failure trial
  // kills a node once, so clusters are not reused across trials).
  auto fresh = [&rels](std::unique_ptr<deploy::Deployment>* dep_out,
                       storage::Epoch* epoch_out) {
    deploy::DeploymentOptions opts;
    opts.num_nodes = 8;
    auto dep = std::make_unique<deploy::Deployment>(opts);
    *epoch_out = *workload::Load(dep.get(), 0, rels);
    auto catalog = [d = dep.get()](const std::string& name) {
      return d->storage(0).Relation(name);
    };
    optimizer::CostParams params;
    params.num_nodes = dep->size();
    optimizer::Optimizer opt(workload::StatsFor(rels), params);
    auto planned = opt.Plan(
        *sql::ParseAndAnalyze(workload::TpchQuerySql("Q10"), catalog));
    *dep_out = std::move(dep);
    return planned->plan;
  };

  std::unique_ptr<deploy::Deployment> dep;
  storage::Epoch epoch;
  auto plan = fresh(&dep, &epoch);
  auto base = dep->ExecuteQuery(0, plan, epoch);
  double base_s = base->execution_us / 1e6;
  std::printf("failure-free Q10: %.3f s (sim), %zu rows\n\n", base_s,
              base->rows.size());
  std::printf("%-14s %-12s %-12s %s\n", "failure_at", "restart_s", "recovery_s",
              "winner");

  for (double frac : {0.2, 0.4, 0.6, 0.8}) {
    auto fail_at = static_cast<sim::SimTime>(frac * base_s * 1e6);
    auto plan_r = fresh(&dep, &epoch);
    double restart = RunWithFailure(*dep, plan_r, epoch,
                                    query::QueryOptions::RecoveryMode::kRestart,
                                    fail_at, 5);
    auto plan_i = fresh(&dep, &epoch);
    double recovery = RunWithFailure(*dep, plan_i, epoch,
                                     query::QueryOptions::RecoveryMode::kIncremental,
                                     fail_at, 5);
    std::printf("%5.0f%% of run  %-12.3f %-12.3f %s\n", frac * 100, restart,
                recovery, recovery < restart ? "incremental" : "restart");
  }
  std::printf("\n(Each run uses a fresh cluster-internal query; the victim's\n"
              " ranges are taken over by its replicas, per the paper's Fig. 21\n"
              " methodology of reusing the same routing tables.)\n");
  return 0;
}
