// Two-writer quickstart: two collaborating participants publish CONCURRENTLY
// against one 5-node deployment — including a deliberate same-epoch race —
// and the store resolves the contention deterministically: one writer per
// epoch, the loser transparently re-based onto the winner's committed
// output, both update logs merged in the final state.
//
//   build/two_writer_quickstart
#include <cstdio>

#include "client/session.h"
#include "deploy/deployment.h"

using namespace orchestra;
using storage::Tuple;
using storage::Update;
using storage::UpdateBatch;
using storage::Value;
using storage::ValueType;

namespace {

UpdateBatch Upsert(const std::string& rel, const std::string& k,
                   const std::string& v) {
  UpdateBatch b;
  b[rel] = {Update::Insert(Tuple{Value(k), Value(v)})};
  return b;
}

}  // namespace

int main() {
  // 1. One shared deployment; every node's Session is a distinct participant.
  deploy::DeploymentOptions opts;
  opts.num_nodes = 5;
  opts.gc_keep_epochs = 8;  // multi-epoch GC: min-across-participants mark
  deploy::Deployment dep(opts);

  client::Session& alice = dep.session(0);
  client::Session& bob = dep.session(1);
  std::printf("cluster up: %zu nodes; participants alice=%u bob=%u\n",
              dep.size(), alice.participant(), bob.participant());

  // 2. A shared relation both participants write DISJOINT rows into (the
  // paper's model: participants publish disjoint update logs).
  storage::RelationDef notes;
  notes.name = "notes";
  notes.schema = storage::Schema(
      {{"id", ValueType::kString}, {"text", ValueType::kString}}, 1);
  dep.CreateRelation(0, notes).ok();

  // 3. The race: both sessions submit in the same instant, so both discover
  // the same base epoch and claim the same new epoch. Exactly one wins the
  // claim; the loser waits for the winner's confirmed commit, re-bases onto
  // it, and commits the NEXT epoch — no torn epochs, no failed tickets.
  client::Ticket ta = alice.Submit(Upsert("notes", "a:greeting", "hello from alice"));
  client::Ticket tb = bob.Submit(Upsert("notes", "b:greeting", "hello from bob"));
  dep.RunUntil([&] { return ta.epoch.done() && tb.epoch.done(); });
  std::printf("alice committed epoch %llu, bob committed epoch %llu\n",
              (unsigned long long)ta.epoch.value(),
              (unsigned long long)tb.epoch.value());
  uint64_t conflicts = dep.publisher(0).pipeline_stats().epoch_conflicts +
                       dep.publisher(1).pipeline_stats().epoch_conflicts;
  uint64_t rebases = dep.publisher(0).pipeline_stats().rebases +
                     dep.publisher(1).pipeline_stats().rebases;
  std::printf("epoch contention: %llu claim(s) lost, %llu re-base(s)\n",
              (unsigned long long)conflicts, (unsigned long long)rebases);

  // 4. Sustained concurrent publishing: each participant pipelines a few
  // more batches (window > 1 overlaps prepare stages with writes) while the
  // other does the same.
  std::vector<client::Ticket> more;
  for (int i = 0; i < 3; ++i) {
    more.push_back(
        alice.Submit(Upsert("notes", "a:" + std::to_string(i), "alice v" + std::to_string(i))));
    more.push_back(
        bob.Submit(Upsert("notes", "b:" + std::to_string(i), "bob v" + std::to_string(i))));
  }
  Pending<storage::Epoch> fa = alice.Flush();
  Pending<storage::Epoch> fb = bob.Flush();
  dep.RunUntil([&] { return fa.done() && fb.done(); });
  storage::Epoch top = std::max(fa.value(), fb.value());
  std::printf("flushed: alice@%llu bob@%llu\n", (unsigned long long)fa.value(),
              (unsigned long long)fb.value());

  // 5. Reads from ANY session see the merged, versioned state.
  auto rows = dep.Retrieve(3, "notes", top);
  std::printf("\nnotes at epoch %llu (%zu rows):\n", (unsigned long long)top,
              rows->size());
  for (const Tuple& t : *rows) {
    std::printf("  %s\n", storage::TupleToString(t).c_str());
  }

  // 6. Time travel still works per epoch: the epoch-race loser's row is
  // absent from the winner's (earlier) epoch.
  storage::Epoch lo = std::min(ta.epoch.value(), tb.epoch.value());
  auto early = dep.Retrieve(3, "notes", lo);
  std::printf("\nnotes at the contested epoch %llu (winner only, %zu row):\n",
              (unsigned long long)lo, early->size());
  for (const Tuple& t : *early) {
    std::printf("  %s\n", storage::TupleToString(t).c_str());
  }
  return 0;
}
