// OLAP over the versioned peer-to-peer store: load a small TPC-H instance,
// run the paper's query set through SQL + optimizer, then publish a second
// epoch and show historical ("as-of") analytics across both epochs.
//
//   build/examples/olap_warehouse
#include <cstdio>

#include "optimizer/optimizer.h"
#include "sql/parser.h"
#include "workload/tpch.h"

using namespace orchestra;

int main() {
  deploy::DeploymentOptions opts;
  opts.num_nodes = 8;
  deploy::Deployment dep(opts);

  workload::TpchConfig cfg;
  cfg.scale_factor = 0.004;
  cfg.num_partitions = 32;
  auto rels = workload::TpchGenerate(cfg);
  auto epoch1 = workload::Load(&dep, 0, rels);
  std::printf("loaded TPC-H SF %.3f into 8 nodes at epoch %llu\n",
              cfg.scale_factor, (unsigned long long)*epoch1);

  auto catalog = [&dep](const std::string& name) {
    return dep.storage(0).Relation(name);
  };
  optimizer::CostParams params;
  params.num_nodes = dep.size();
  optimizer::Optimizer opt(workload::StatsFor(rels), params);

  for (const std::string& name : workload::TpchQueryNames()) {
    auto q = sql::ParseAndAnalyze(workload::TpchQuerySql(name), catalog);
    auto planned = opt.Plan(*q);
    dep.network().ResetTraffic();
    auto result = dep.ExecuteQuery(0, planned->plan, *epoch1);
    std::printf("%-4s -> %4zu rows in %.3f s (sim), %.2f MB traffic\n",
                name.c_str(), result->rows.size(),
                result->execution_us / 1e6,
                dep.network().total_bytes() / 1e6);
    if (name == "Q1") {
      for (const auto& t : result->rows) {
        std::printf("       %s\n", storage::TupleToString(t).c_str());
      }
    }
  }

  // A new batch of orders lands (epoch 2): Q6 revenue moves, but the epoch-1
  // answer is still exactly reproducible — full versioning (§IV).
  storage::UpdateBatch more;
  int64_t day = workload::TpchDate(1994, 6, 1);
  for (int i = 0; i < 200; ++i) {
    more["lineitem"].push_back(storage::Update::Insert(
        {storage::Value(int64_t{9000000 + i}), storage::Value(int64_t{1}),
         storage::Value(int64_t{1}), storage::Value(int64_t{1}),
         storage::Value(10.0), storage::Value(10000.0), storage::Value(0.06),
         storage::Value(0.02), storage::Value(std::string("N")),
         storage::Value(std::string("F")), storage::Value(day),
         storage::Value(day + 30), storage::Value(day + 40)}));
  }
  auto epoch2 = dep.Publish(0, std::move(more));
  std::printf("\npublished %llu as a new batch of June-1994 lineitems\n",
              (unsigned long long)*epoch2);

  auto q6 = opt.Plan(*sql::ParseAndAnalyze(workload::TpchQuerySql("Q6"), catalog));
  auto rev_then = dep.ExecuteQuery(0, q6->plan, *epoch1);
  auto rev_now = dep.ExecuteQuery(0, q6->plan, *epoch2);
  std::printf("Q6 revenue as-of epoch %llu: %s\n", (unsigned long long)*epoch1,
              storage::TupleToString(rev_then->rows[0]).c_str());
  std::printf("Q6 revenue as-of epoch %llu: %s\n", (unsigned long long)*epoch2,
              storage::TupleToString(rev_now->rows[0]).c_str());
  return 0;
}
