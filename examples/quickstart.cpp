// Quickstart: bring up a 5-node ORCHESTRA storage/query cluster, publish two
// epochs of data through the client::Session API (pipelined tickets), run
// the paper's running example query (Example 5.1) via SQL, query an old
// epoch, and survive a mid-query node failure.
//
//   build/examples/quickstart
#include <cstdio>

#include "client/session.h"
#include "deploy/deployment.h"
#include "optimizer/optimizer.h"
#include "sql/parser.h"

using namespace orchestra;
using storage::Tuple;
using storage::Value;
using storage::ValueType;

int main() {
  // 1. A five-node deployment: simulated network, balanced ring, replication 3.
  deploy::DeploymentOptions opts;
  opts.num_nodes = 5;
  deploy::Deployment dep(opts);
  std::printf("cluster up: %zu nodes, replication %d\n", dep.size(),
              opts.replication);

  // 2. Create two shared relations: R(x,y) keyed on x, S(y,z) keyed on y.
  storage::RelationDef r;
  r.name = "R";
  r.schema = storage::Schema({{"x", ValueType::kString}, {"y", ValueType::kString}}, 1);
  storage::RelationDef s = r;
  s.name = "S";
  s.schema = storage::Schema({{"y", ValueType::kString}, {"z", ValueType::kString}}, 1);
  dep.CreateRelation(0, r).ok();
  dep.CreateRelation(0, s).ok();

  // 3. Publish two epochs through the participant's Session: both batches
  // are submitted up front and pipeline inside the session (epoch 2's
  // prepare overlaps epoch 1's writes; commits stay strictly ordered).
  client::Session& session = dep.session(0);
  storage::UpdateBatch e1;
  e1["R"] = {storage::Update::Insert({Value("a"), Value("b")}),
             storage::Update::Insert({Value("c"), Value("d")})};
  e1["S"] = {storage::Update::Insert({Value("b"), Value("j")}),
             storage::Update::Insert({Value("f"), Value("k")})};
  storage::UpdateBatch e2;  // an update to S(b) plus a new R row
  e2["S"] = {storage::Update::Insert({Value("b"), Value("e")})};
  e2["R"] = {storage::Update::Insert({Value("d"), Value("b")})};
  client::Ticket t1 = session.Submit(std::move(e1));
  client::Ticket t2 = session.Submit(std::move(e2));
  auto flush = session.Flush();
  dep.RunUntil([&] { return flush.done(); });
  Result<storage::Epoch> epoch1 = t1.epoch.ToResult();
  Result<storage::Epoch> epoch2 = t2.epoch.ToResult();
  std::printf("published epochs %llu and %llu (%llu publish pipelined)\n",
              (unsigned long long)*epoch1, (unsigned long long)*epoch2,
              (unsigned long long)dep.publisher(0).pipeline_stats().chained);

  // 4. The paper's running example, straight from SQL through the optimizer.
  auto catalog = [&dep](const std::string& name) {
    return dep.storage(0).Relation(name);
  };
  auto analyzed = sql::ParseAndAnalyze(
      "SELECT x, MIN(z) FROM R, S WHERE R.y = S.y GROUP BY x", catalog);
  optimizer::CostParams params;
  params.num_nodes = dep.size();
  optimizer::Optimizer opt({}, params);
  auto planned = opt.Plan(*analyzed);
  std::printf("\nphysical plan:\n%s", planned->plan.ToString().c_str());

  auto now = dep.ExecuteQuery(1, planned->plan, *epoch2);
  std::printf("\nresults at epoch %llu:\n", (unsigned long long)*epoch2);
  for (const Tuple& t : now->rows) {
    std::printf("  %s\n", storage::TupleToString(t).c_str());
  }

  // 5. Historical query: the same SQL against the archived epoch 1 snapshot.
  auto then = dep.ExecuteQuery(1, planned->plan, *epoch1);
  std::printf("results at epoch %llu (time travel):\n",
              (unsigned long long)*epoch1);
  for (const Tuple& t : then->rows) {
    std::printf("  %s\n", storage::TupleToString(t).c_str());
  }

  // 6. Kill a node mid-query; incremental recovery completes it exactly.
  bool done = false;
  query::QueryResult result;
  dep.query(1).Execute(planned->plan, *epoch2, {},
                       [&](Status st, query::QueryResult qr) {
                         if (st.ok()) result = std::move(qr);
                         done = true;
                       });
  dep.RunFor(500);  // let the query get going (simulated microseconds)
  dep.KillNode(3, /*update_routing=*/false);
  dep.RunUntil([&] { return done; });
  std::printf("\nafter killing node 3 mid-query: %zu rows, %u recovery round(s)\n",
              result.rows.size(), result.recoveries);
  for (const Tuple& t : result.rows) {
    std::printf("  %s\n", storage::TupleToString(t).c_str());
  }
  return 0;
}
