// The paper's motivating scenario (§I): autonomous bioinformatics groups
// collaboratively curate gene annotations. Three participants with their own
// local databases and trust levels publish updates, import each other's data
// through schema mappings, and reconcile conflicting annotations.
//
//   build/examples/bioshare_cdss
#include <cstdio>

#include "cdss/cdss.h"

using namespace orchestra;
using cdss::Participant;
using cdss::SchemaMapping;
using storage::Value;
using storage::ValueType;

int main() {
  deploy::DeploymentOptions opts;
  opts.num_nodes = 6;
  deploy::Deployment dep(opts);

  // Three labs contribute nodes and participate; the consortium trusts the
  // genome center most, then the university lab, then the startup.
  Participant genome_center(&dep, 0, "genome-center", 1);
  Participant uni_lab(&dep, 1, "uni-lab", 2);
  Participant biotech(&dep, 2, "biotech", 3);

  // Shared CDSS relation: annotations keyed by gene; the origin becomes part
  // of the shared key so concurrent versions coexist until reconciliation.
  auto shared = cdss::SharedRelation(
      "annotations",
      {{"gene", ValueType::kString}, {"function", ValueType::kString}}, 1);
  genome_center.CreateSharedRelation(shared).ok();

  storage::RelationDef local;
  local.name = "annotations_local";
  local.schema = storage::Schema(
      {{"gene", ValueType::kString}, {"function", ValueType::kString}}, 1);
  SchemaMapping pull_all{
      "pull-annotations", "annotations_local",
      "SELECT gene, function, origin, origin_priority FROM annotations"};
  for (Participant* p : {&genome_center, &uni_lab, &biotech}) {
    p->CreateLocalRelation(local);
    p->BindLocalToShared("annotations_local", "annotations");
    p->AddMapping(pull_all);
  }

  // Everyone edits locally (possibly disagreeing), then publishes.
  genome_center.LocalInsert("annotations_local",
                            {Value("BRCA1"), Value("DNA double-strand break repair")});
  genome_center.LocalInsert("annotations_local",
                            {Value("TP53"), Value("tumor suppressor")});
  uni_lab.LocalInsert("annotations_local",
                      {Value("TP53"), Value("apoptosis regulator")});  // conflict!
  uni_lab.LocalInsert("annotations_local",
                      {Value("MYC"), Value("transcription factor")});
  biotech.LocalInsert("annotations_local",
                      {Value("EGFR"), Value("growth factor receptor")});

  for (Participant* p : {&genome_center, &uni_lab, &biotech}) {
    auto e = p->Publish();
    std::printf("%s published epoch %llu\n", p->name().c_str(),
                e.ok() ? (unsigned long long)*e : 0ull);
  }

  // Import cycle: update exchange (mapping queries over the shared store)
  // plus reconciliation by trust priority.
  for (Participant* p : {&genome_center, &uni_lab, &biotech}) {
    auto report = p->Import();
    std::printf("\n%s imported %zu tuple(s), %zu conflict(s) (%zu kept own)\n",
                p->name().c_str(), report->tuples_imported,
                report->conflicts_found, report->conflicts_kept_mine);
    for (const cdss::Conflict& c : report->conflicts) {
      std::printf("  conflict on %s: mine=%s theirs=%s -> kept %s\n",
                  c.relation.c_str(), storage::TupleToString(c.mine).c_str(),
                  storage::TupleToString(c.theirs).c_str(),
                  c.resolved_mine ? "mine" : "theirs");
    }
    std::printf("  local database now:\n");
    for (const auto& t : p->LocalScan("annotations_local")) {
      std::printf("    %s\n", storage::TupleToString(t).c_str());
    }
  }

  // The genome center's "tumor suppressor" wins the TP53 dispute everywhere,
  // while every lab also gains the others' new annotations.
  return 0;
}
