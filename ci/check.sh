#!/usr/bin/env bash
# CI gate: tier-1 build + full test suite, then the sanitizer suite with leak
# detection on the layers that own async RPC state.
#
#   ci/check.sh            # both stages
#   ci/check.sh tier1      # just the tier-1 verify command
#   ci/check.sh sanitize   # just the ASan/UBSan/LSan stage
set -euo pipefail
cd "$(dirname "$0")/.."

stage="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 4)"

tier1() {
  echo "== tier-1: configure + build + ctest"
  cmake -B build -S .
  cmake --build build -j "$jobs"
  (cd build && ctest --output-on-failure -j "$jobs")
}

sanitize() {
  echo "== sanitizer: address,undefined with leak detection"
  cmake -B build-asan -S . -DORC_SANITIZE=address,undefined \
        -DORC_BUILD_BENCH=OFF -DORC_BUILD_EXAMPLES=OFF
  cmake --build build-asan -j "$jobs" \
        --target storage_test query_test integration_test rpc_lifecycle_test
  for t in storage_test query_test integration_test rpc_lifecycle_test; do
    echo "-- $t"
    ASAN_OPTIONS=detect_leaks=1 "./build-asan/$t"
  done
}

case "$stage" in
  tier1) tier1 ;;
  sanitize) sanitize ;;
  all) tier1; sanitize ;;
  *) echo "usage: ci/check.sh [tier1|sanitize|all]" >&2; exit 2 ;;
esac
echo "== all checks passed"
