#!/usr/bin/env bash
# CI gate. Stages:
#
#   tier1      configure + build (warnings-as-errors) + full ctest suite
#   sanitize   ASan/UBSan with leak detection on the suites that own async
#              RPC state, storage churn, and the raw LocalStore paths
#   tsan       ThreadSanitizer build + the real-thread smoke suite
#   lint       project-invariant linter (tools/lint/) over src/, then its
#              fixture selftest — every rule must flag and pass on cue
#   tidy       clang-tidy (per .clang-tidy) over the compilation database;
#              SKIPs with a notice when clang-tidy is not installed
#   bench      micro-substrate smoke run + BENCH_*.json field validation
#   benchdiff  fresh BENCH_*.json vs committed bench/results/ baselines
#   docs       relative-link check over README/docs/ + compile every example
#   all        every stage above, in that order
#
#   ci/check.sh [stage]    # default: all
#
# A failing stage prints the exact command to reproduce it in isolation.
#
# ORCHESTRA_BENCH_TOLERANCE (default 0.35): a fresh entry fails the diff when
# its ops_per_sec drops below tolerance * committed — generous because wall
# clock varies across machines; deterministic sim metrics use tight bounds.
set -euo pipefail
cd "$(dirname "$0")/.."

stage="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 4)"

# Reproduce-command reporting: every stage runs with errexit live (wrapping
# the call in `if !` would suppress set -e inside the function); the EXIT
# trap names the stage that was in flight and how to rerun it alone.
current_stage=""
on_exit() {
  local code=$?
  if [[ "$code" -ne 0 && -n "$current_stage" ]]; then
    echo "== stage '$current_stage' FAILED — reproduce with:" \
         "ci/check.sh $current_stage" >&2
  fi
}
trap on_exit EXIT

run_stage() {
  current_stage="$2"
  "$1"
  current_stage=""
}

tier1() {
  echo "== tier-1: configure + build + ctest"
  cmake -B build -S .
  cmake --build build -j "$jobs"
  (cd build && ctest --output-on-failure -j "$jobs")
}

sanitize() {
  echo "== sanitizer: address,undefined with leak detection"
  local suites="storage_test query_test integration_test rpc_lifecycle_test \
    client_test churn_test localstore_test net_test wal_test"
  cmake -B build-asan -S . -DORC_SANITIZE=address,undefined \
        -DORC_BUILD_BENCH=OFF -DORC_BUILD_EXAMPLES=OFF
  # shellcheck disable=SC2086
  cmake --build build-asan -j "$jobs" --target $suites
  for t in $suites; do
    echo "-- $t"
    ASAN_OPTIONS=detect_leaks=1 "./build-asan/$t"
  done
}

tsan() {
  echo "== tsan: ThreadSanitizer build + real-thread smoke suites"
  cmake -B build-tsan -S . -DORC_SANITIZE=thread \
        -DORC_BUILD_BENCH=OFF -DORC_BUILD_EXAMPLES=OFF
  cmake --build build-tsan -j "$jobs" --target thread_smoke_test wal_test
  ./build-tsan/thread_smoke_test
  # wal_test includes the checkpoint-writer-vs-concurrent-readers smoke
  # (WalThreads.*); the rest of the suite rides along under TSan for free.
  ./build-tsan/wal_test
}

lint() {
  echo "== lint: project-invariant linter over src/"
  python3 tools/lint/orchestra_lint.py --root .
  echo "== lint: fixture selftest (every rule flags and passes on cue)"
  python3 tools/lint/orchestra_lint.py --selftest
}

tidy() {
  echo "== tidy: clang-tidy over the compilation database"
  if ! command -v clang-tidy > /dev/null 2>&1; then
    echo "tidy SKIPPED: clang-tidy not installed on this machine" \
         "(.clang-tidy is the profile; install LLVM to run locally)"
    return 0
  fi
  cmake -B build -S . > /dev/null   # exports build/compile_commands.json
  local srcs
  srcs="$(git ls-files 'src/*.cc' 'tests/*.cpp' 'bench/*.cpp')"
  # shellcheck disable=SC2086
  if command -v run-clang-tidy > /dev/null 2>&1; then
    run-clang-tidy -p build -quiet -j "$jobs" $srcs
  else
    clang-tidy -p build --quiet $srcs
  fi
}

bench_smoke() {
  echo "== bench smoke: micro-substrate run + JSON field validation"
  cmake -B build -S .
  cmake --build build -j "$jobs" --target bench_micro_substrate
  (cd build && ORCHESTRA_BENCH_SMOKE=1 ./bench_micro_substrate > /dev/null)
  python3 - build/BENCH_micro_substrate.json <<'PY'
import json, sys

doc = json.load(open(sys.argv[1]))
assert doc["bench"] == "micro_substrate", doc
assert doc["scale"] in ("small", "paper"), doc
entries = {e["name"]: e for e in doc["entries"]}
required = ["localstore_put", "localstore_overwrite", "localstore_get",
            "localstore_get_view", "localstore_contains", "localstore_scan",
            "localstore_prefix_scan", "localstore_churn", "localstore_mixed"]
for name in required:
    assert name in entries, f"missing bench entry {name}"
for e in doc["entries"]:
    for field in ("ops_per_sec", "wall_clock_s", "sim_makespan_s", "wire_bytes"):
        assert field in e, f"entry {e['name']} missing field {field}"
        assert isinstance(e[field], (int, float)), (e["name"], field)
print(f"bench smoke OK: {len(doc['entries'])} entries validated")
PY
}

bench_diff() {
  echo "== bench diff: fresh BENCH_*.json vs committed bench/results/ baselines"
  cmake -B build -S .
  cmake --build build -j "$jobs" --target bench_micro_substrate \
        bench_sustained_churn bench_fig07_09_stb_nodes bench_pipelined_publish \
        bench_fig21_recovery bench_recovery_overhead
  (cd build && ORCHESTRA_BENCH_SMOKE=1 ./bench_micro_substrate > /dev/null)
  (cd build && ./bench_sustained_churn > /dev/null)
  (cd build && ./bench_fig07_09_stb_nodes > /dev/null)
  (cd build && ./bench_pipelined_publish > /dev/null)
  (cd build && ORCHESTRA_BENCH_SMOKE=1 ./bench_fig21_recovery > /dev/null)
  (cd build && ORCHESTRA_BENCH_SMOKE=1 ./bench_recovery_overhead > /dev/null)
  python3 - <<'PY'
import glob, json, os, sys

tol = float(os.environ.get("ORCHESTRA_BENCH_TOLERANCE", "0.35"))
failures = []
compared = 0
skipped = []
for ref_path in sorted(glob.glob("bench/results/BENCH_*.json")):
    if ".before." in ref_path:
        continue
    fresh_path = os.path.join("build", os.path.basename(ref_path))
    if not os.path.exists(fresh_path):
        # Baseline committed but its bench is not part of this stage's run
        # set; say so instead of silently claiming coverage.
        skipped.append(os.path.basename(ref_path))
        continue
    ref = json.load(open(ref_path))
    fresh = json.load(open(fresh_path))
    fresh_entries = {e["name"]: e for e in fresh["entries"]}
    for re_ in ref["entries"]:
        if re_["name"] == "sink_checksum":
            continue  # anti-DCE artifact, not a throughput metric
        fe = fresh_entries.get(re_["name"])
        if fe is None:
            failures.append(f"{ref['bench']}/{re_['name']}: entry disappeared")
            continue
        compared += 1
        # Wall-clock throughput: generous tolerance (machine-dependent).
        if re_["ops_per_sec"] > 0 and fe["ops_per_sec"] < tol * re_["ops_per_sec"]:
            failures.append(
                f"{ref['bench']}/{re_['name']}: ops_per_sec "
                f"{fe['ops_per_sec']:.3g} < {tol} * committed {re_['ops_per_sec']:.3g}")
        # Deterministic-sim storage metric: GC must keep the footprint flat.
        if re_["name"] == "sustained_overwrite_gc_on" and "live_records" in re_:
            if fe.get("live_records", 1e18) > 1.3 * re_["live_records"]:
                failures.append(
                    f"{ref['bench']}/{re_['name']}: live_records "
                    f"{fe.get('live_records')} > 1.3 * committed {re_['live_records']}")
    # Pipelined-publish acceptance bounds, on the FRESH run's deterministic
    # sim metrics (independent of machine speed):
    #   window-4 pipeline >= 2x window-1 throughput, inbox depth at window 8
    #   within 2x of the window-1 baseline, admission control engaged.
    if ref["bench"] == "pipelined_publish":
        f = fresh_entries
        try:
            w1, w4, w8 = f["wan_window_1"], f["wan_window_4"], f["wan_window_8"]
            if w4["sim_tuples_per_sec"] < 2.0 * w1["sim_tuples_per_sec"]:
                failures.append(
                    f"pipelined_publish: window-4 sim throughput "
                    f"{w4['sim_tuples_per_sec']:.0f} < 2x window-1 "
                    f"{w1['sim_tuples_per_sec']:.0f}")
            if w8["max_inbox_msgs"] > 2.0 * w1["max_inbox_msgs"]:
                failures.append(
                    f"pipelined_publish: window-8 max inbox "
                    f"{w8['max_inbox_msgs']} > 2x window-1 {w1['max_inbox_msgs']}")
            ov = f["overload_injected_window_8"]
            if ov["throttle_shrinks"] < 1 or ov["min_window_seen"] != 1:
                failures.append(
                    "pipelined_publish: admission control did not throttle "
                    "under injected overload")
        except KeyError as e:
            failures.append(f"pipelined_publish: missing entry {e}")
    # Sustained-churn acceptance bound: incremental background GC must keep
    # the gc_on/gc_off throughput gap <= 10% (both sides run in the same
    # process on the same machine, so the ratio is meaningful).
    if ref["bench"] == "sustained_churn":
        f = fresh_entries
        try:
            on, off = f["sustained_overwrite_gc_on"], f["sustained_overwrite_gc_off"]
            if on["ops_per_sec"] < 0.90 * off["ops_per_sec"]:
                failures.append(
                    f"sustained_churn: gc_on throughput {on['ops_per_sec']:.0f}"
                    f" < 90% of gc_off {off['ops_per_sec']:.0f}")
        except KeyError as e:
            failures.append(f"sustained_churn: missing entry {e}")
    # Recovery acceptance bounds, on the FRESH run's deterministic replay
    # counters: with checkpoints the replay tail is bounded by the cadence
    # (flat while the store grows 100x); without them replay is the whole log.
    if ref["bench"] == "fig21_recovery":
        f = fresh_entries
        try:
            for scale in ("1x", "10x", "100x"):
                on = f[f"recover_{scale}_ckpt_on"]
                off = f[f"recover_{scale}_ckpt_off"]
                if on["replayed_records"] > on["checkpoint_every"]:
                    failures.append(
                        f"fig21_recovery: {scale} checkpointed replay tail "
                        f"{on['replayed_records']:.0f} exceeds the cadence "
                        f"{on['checkpoint_every']:.0f}")
                if off["replayed_records"] != off["ops"]:
                    failures.append(
                        f"fig21_recovery: {scale} checkpoint-off replay "
                        f"{off['replayed_records']:.0f} != full log {off['ops']:.0f}")
            on100 = f["recover_100x_ckpt_on"]
            off100 = f["recover_100x_ckpt_off"]
            if on100["replayed_records"] * 20 > off100["replayed_records"]:
                failures.append(
                    "fig21_recovery: 100x checkpointed replay "
                    f"{on100['replayed_records']:.0f} not sub-linear vs full "
                    f"replay {off100['replayed_records']:.0f}")
        except KeyError as e:
            failures.append(f"fig21_recovery: missing entry {e}")
if compared == 0:
    failures.append("no bench entries compared - baselines or fresh runs missing")
if failures:
    print("bench diff FAILED:")
    for f in failures:
        print("  " + f)
    sys.exit(1)
msg = f"bench diff OK: {compared} entries within tolerance"
if skipped:
    msg += f" (baselines not run this stage: {', '.join(skipped)})"
print(msg)
PY
}

docs_check() {
  echo "== docs: relative-link check over README.md + docs/"
  python3 - <<'PY'
import os, re, sys

# Markdown links [text](target); http(s)/mailto are skipped, anchors allowed.
link_re = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
files = ["README.md"] + sorted(
    os.path.join("docs", f) for f in os.listdir("docs") if f.endswith(".md"))
broken = []
checked = 0
for path in files:
    base = os.path.dirname(path)
    for target in link_re.findall(open(path).read()):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        rel = target.split("#", 1)[0]
        if not rel:
            continue  # same-file anchor
        checked += 1
        if not os.path.exists(os.path.normpath(os.path.join(base, rel))):
            broken.append(f"{path}: broken relative link -> {target}")
for b in broken:
    print("  " + b)
if broken:
    sys.exit(1)
print(f"docs links OK: {checked} relative links over {len(files)} files")
PY
  echo "== docs: compile every example (tier-1 carries them; this stage fails fast)"
  cmake -B build -S . > /dev/null
  local examples
  examples="$(ls examples/*.cpp | xargs -n1 basename | sed 's/\.cpp$//')"
  # shellcheck disable=SC2086
  cmake --build build -j "$jobs" --target $examples
  echo "docs stage OK: $(echo "$examples" | wc -w) examples compiled"
}

case "$stage" in
  tier1) run_stage tier1 tier1 ;;
  sanitize) run_stage sanitize sanitize ;;
  tsan) run_stage tsan tsan ;;
  lint) run_stage lint lint ;;
  tidy) run_stage tidy tidy ;;
  bench) run_stage bench_smoke bench ;;
  benchdiff) run_stage bench_diff benchdiff ;;
  docs) run_stage docs_check docs ;;
  all)
    run_stage tier1 tier1
    run_stage sanitize sanitize
    run_stage tsan tsan
    run_stage lint lint
    run_stage tidy tidy
    run_stage bench_smoke bench
    run_stage bench_diff benchdiff
    run_stage docs_check docs
    ;;
  *)
    echo "usage: ci/check.sh [tier1|sanitize|tsan|lint|tidy|bench|benchdiff|docs|all]" >&2
    exit 2
    ;;
esac
echo "== all checks passed"
