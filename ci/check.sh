#!/usr/bin/env bash
# CI gate: tier-1 build + full test suite, the sanitizer suite with leak
# detection on the layers that own async RPC state, and a bench smoke run
# that validates the BENCH_*.json perf-tracking output.
#
#   ci/check.sh            # all stages
#   ci/check.sh tier1      # just the tier-1 verify command
#   ci/check.sh sanitize   # just the ASan/UBSan/LSan stage
#   ci/check.sh bench      # just the bench JSON smoke stage
set -euo pipefail
cd "$(dirname "$0")/.."

stage="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 4)"

tier1() {
  echo "== tier-1: configure + build + ctest"
  cmake -B build -S .
  cmake --build build -j "$jobs"
  (cd build && ctest --output-on-failure -j "$jobs")
}

sanitize() {
  echo "== sanitizer: address,undefined with leak detection"
  cmake -B build-asan -S . -DORC_SANITIZE=address,undefined \
        -DORC_BUILD_BENCH=OFF -DORC_BUILD_EXAMPLES=OFF
  cmake --build build-asan -j "$jobs" \
        --target storage_test query_test integration_test rpc_lifecycle_test
  for t in storage_test query_test integration_test rpc_lifecycle_test; do
    echo "-- $t"
    ASAN_OPTIONS=detect_leaks=1 "./build-asan/$t"
  done
}

bench_smoke() {
  echo "== bench smoke: micro-substrate run + JSON field validation"
  cmake -B build -S .
  cmake --build build -j "$jobs" --target bench_micro_substrate
  (cd build && ORCHESTRA_BENCH_SMOKE=1 ./bench_micro_substrate > /dev/null)
  python3 - build/BENCH_micro_substrate.json <<'PY'
import json, sys

doc = json.load(open(sys.argv[1]))
assert doc["bench"] == "micro_substrate", doc
assert doc["scale"] in ("small", "paper"), doc
entries = {e["name"]: e for e in doc["entries"]}
required = ["localstore_put", "localstore_overwrite", "localstore_get",
            "localstore_get_view", "localstore_contains", "localstore_scan",
            "localstore_prefix_scan", "localstore_churn", "localstore_mixed"]
for name in required:
    assert name in entries, f"missing bench entry {name}"
for e in doc["entries"]:
    for field in ("ops_per_sec", "wall_clock_s", "sim_makespan_s", "wire_bytes"):
        assert field in e, f"entry {e['name']} missing field {field}"
        assert isinstance(e[field], (int, float)), (e["name"], field)
print(f"bench smoke OK: {len(doc['entries'])} entries validated")
PY
}

case "$stage" in
  tier1) tier1 ;;
  sanitize) sanitize ;;
  bench) bench_smoke ;;
  all) tier1; sanitize; bench_smoke ;;
  *) echo "usage: ci/check.sh [tier1|sanitize|bench|all]" >&2; exit 2 ;;
esac
echo "== all checks passed"
