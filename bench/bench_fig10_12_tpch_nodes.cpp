// Figures 10, 11, 12: TPC-H scaling with node count (1-16 nodes, SF 0.5 at
// paper scale). Reports running time, total traffic, and per-node traffic
// for Q1, Q3, Q5, Q6, Q10.
#include "bench/bench_util.h"

using namespace orchestra;
using namespace orchestra::bench;

int main() {
  Header("Figures 10/11/12: TPC-H vs number of nodes");
  double sf = TpchSf(0.5);
  std::printf("# paper: SF 0.5; this run: SF %.4f (%s scale)\n", sf,
              PaperScale() ? "paper" : "small");
  std::printf("query,nodes,time_s,total_traffic_MB,per_node_traffic_MB,rows\n");

  JsonReport report("fig10_12_tpch_nodes");
  for (size_t nodes : {1, 2, 4, 8, 16}) {
    workload::TpchConfig cfg;
    cfg.scale_factor = sf;
    cfg.num_partitions = static_cast<uint32_t>(4 * std::max<size_t>(nodes, 4));
    auto cluster = MakeCluster(workload::TpchGenerate(cfg), nodes);
    ReportLoad(report, "publish_n" + std::to_string(nodes), cluster);
    for (const std::string& q : workload::TpchQueryNames()) {
      auto plan = PlanSql(cluster, workload::TpchQuerySql(q));
      RunMetrics m = RunQuery(cluster, plan);
      ReportRun(report, "query_" + q + "_n" + std::to_string(nodes), m);
      std::printf("%s,%zu,%.3f,%.2f,%.2f,%zu\n", q.c_str(), nodes, m.time_s,
                  m.total_mb, m.per_node_mb, m.rows);
      std::fflush(stdout);
    }
  }
  return 0;
}
