// Figures 13, 15: STBenchmark scaling with data size (100K-1.6M tuples per
// relation at paper scale, 8 nodes). Reports running time and total traffic.
#include "bench/bench_util.h"

using namespace orchestra;
using namespace orchestra::bench;

int main() {
  Header("Figures 13/15: STBenchmark vs data size (8 nodes)");
  std::printf("# paper sweep: 100K..1.6M tuples/relation; this run scales that by %s\n",
              PaperScale() ? "1x" : "1/200x");
  std::printf("scenario,tuples_per_relation,time_s,total_traffic_MB,rows\n");

  // Paper sweep: 100K, 200K, 400K, 800K, 1.6M == 800K * {1/8,1/4,1/2,1,2}.
  JsonReport report("fig13_15_stb_scale");
  for (workload::StbScenario scenario : workload::kAllStbScenarios) {
    for (double relative : {0.125, 0.25, 0.5, 1.0, 2.0}) {
      workload::StbConfig cfg;
      cfg.tuples_per_relation = StbTuples(relative);
      cfg.num_partitions = 32;
      auto cluster = MakeCluster(workload::StbGenerate(scenario, cfg), 8);
      std::string tag = std::string(workload::StbScenarioName(scenario)) + "_t" +
                        std::to_string(cfg.tuples_per_relation);
      ReportLoad(report, "publish_" + tag, cluster);
      auto plan = PlanSql(cluster, workload::StbQuerySql(scenario));
      RunMetrics m = RunQuery(cluster, plan);
      ReportRun(report, "query_" + tag, m);
      std::printf("%s,%llu,%.3f,%.2f,%zu\n", workload::StbScenarioName(scenario),
                  static_cast<unsigned long long>(cfg.tuples_per_relation), m.time_s,
                  m.total_mb, m.rows);
      std::fflush(stdout);
    }
  }
  return 0;
}
