// Figures 7, 8, 9: STBenchmark scaling with node count (1-16 nodes,
// 800K tuples/relation at paper scale). Reports running time, total network
// traffic, and per-node traffic for the five mapping scenarios.
#include "bench/bench_util.h"

using namespace orchestra;
using namespace orchestra::bench;

int main() {
  Header("Figures 7/8/9: STBenchmark vs number of nodes");
  std::printf("# paper: 800K tuples/relation; this run: %llu (%s scale)\n",
              static_cast<unsigned long long>(StbTuples()),
              PaperScale() ? "paper" : "small");
  std::printf("scenario,nodes,time_s,total_traffic_MB,per_node_traffic_MB,rows\n");

  JsonReport report("fig07_09_stb_nodes");
  for (workload::StbScenario scenario : workload::kAllStbScenarios) {
    for (size_t nodes : {1, 2, 4, 8, 16}) {
      workload::StbConfig cfg;
      cfg.tuples_per_relation = StbTuples();
      cfg.num_partitions = static_cast<uint32_t>(4 * std::max<size_t>(nodes, 4));
      auto cluster = MakeCluster(workload::StbGenerate(scenario, cfg), nodes);
      std::string tag = std::string(workload::StbScenarioName(scenario)) + "_n" +
                        std::to_string(nodes);
      ReportLoad(report, "publish_" + tag, cluster);
      auto plan = PlanSql(cluster, workload::StbQuerySql(scenario));
      RunMetrics m = RunQuery(cluster, plan);
      ReportRun(report, "query_" + tag, m);
      std::printf("%s,%zu,%.3f,%.2f,%.2f,%zu\n", workload::StbScenarioName(scenario),
                  nodes, m.time_s, m.total_mb, m.per_node_mb, m.rows);
      std::fflush(stdout);
    }
  }
  return 0;
}
