// Pipelined batched publishing through client::Session: throughput of an
// STBench-sized update stream at publish windows 1/2/4/8, the coalesced
// kPutTuples RPC count, and the admission-control story (inbox depth + the
// backpressure knob).
//
// The primary sweep runs the paper's own setting — collaborative peers
// publishing over wide-area links (§VI deploys on shared clusters/EC2; the
// CDSS participants are different institutions) — where publish latency is
// round-trip dominated and pipelining pays most: a chained publish skips
// epoch discovery and the base coordinator/page fetches and overlaps its
// prepare stages with the predecessor's writes. Commits stay strictly
// ordered and a chained publish writes nothing until its predecessor has
// committed, so the steady-state floor is one write + one commit round trip
// per epoch; windows deeper than 2 buy burst absorption, not extra overlap.
//
// Emits BENCH_pipelined_publish.json; the benchdiff CI stage asserts the
// acceptance bounds on the deterministic sim metrics:
//   * WAN sim throughput at window 4 >= 2x window 1,
//   * max per-node inbox depth at window 8 <= 2x the window-1 baseline,
//   * the admission-control phase actually throttled (and lost nothing).
//
//   build/bench_pipelined_publish
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "client/session.h"

using namespace orchestra;
using storage::Update;
using storage::UpdateBatch;
using storage::Value;
using storage::ValueType;

namespace {

storage::RelationDef StreamRelation() {
  storage::RelationDef def;
  def.name = "stb_stream";
  def.schema = storage::Schema(
      {{"k", ValueType::kInt64}, {"payload", ValueType::kString}},
      /*key_arity=*/1);
  def.num_partitions = 16;
  return def;
}

/// Inter-site link: ~100 Mbit/s with 5 ms one-way latency.
net::LinkParams WanLink() {
  net::LinkParams link;
  link.bandwidth_bytes_per_sec = 12.5e6;
  link.latency_us = 5000;
  return link;
}

struct PhaseResult {
  size_t window = 0;
  double wall_s = 0;
  double sim_s = 0;
  uint64_t tuples = 0;
  uint64_t publishes = 0;
  uint64_t wire_bytes = 0;
  uint64_t put_frames = 0;   // coalesced kPutTuples RPCs (publisher side)
  uint64_t chained = 0;      // publishes that pipelined onto a predecessor
  uint64_t max_inbox_msgs = 0;
  uint64_t max_inbox_bytes = 0;
  uint64_t throttle_shrinks = 0;
  size_t min_window_seen = 0;
};

struct PhaseConfig {
  size_t window = 1;
  net::LinkParams link;            // default: Gigabit LAN
  uint64_t rows_per_batch = 50;    // small batches -> latency-bound publishes
  uint64_t injected_peer_load = 0; // synthetic overload on every peer
};

PhaseResult RunPhase(const PhaseConfig& cfg, uint64_t total_rows) {
  deploy::DeploymentOptions opts;
  opts.num_nodes = 5;
  opts.replication = 3;
  opts.link = cfg.link;
  opts.session.max_window = cfg.window;
  deploy::Deployment dep(opts);
  if (!dep.CreateRelation(0, StreamRelation()).ok()) {
    std::fprintf(stderr, "create relation failed\n");
    std::exit(1);
  }
  if (cfg.injected_peer_load > 0) {
    for (size_t i = 1; i < dep.size(); ++i) {
      dep.storage(i).InjectLoadHint(
          static_cast<uint32_t>(cfg.injected_peer_load));
    }
  }

  const uint64_t batches = std::max<uint64_t>(8, total_rows / cfg.rows_per_batch);
  // Overwrite-heavy working set (the sustained-traffic regime): the stream
  // cycles a keyspace half its own size.
  const uint64_t keyspace = std::max<uint64_t>(64, total_rows / 10);

  dep.network().ResetTraffic();
  client::Session& session = dep.session(0);
  double wall0 = bench::WallSeconds();
  double sim0 = static_cast<double>(dep.sim().now()) / 1e6;

  std::vector<client::Ticket> tickets;
  tickets.reserve(batches);
  uint64_t key = 0;
  for (uint64_t b = 0; b < batches; ++b) {
    UpdateBatch batch;
    auto& ups = batch["stb_stream"];
    ups.reserve(cfg.rows_per_batch);
    for (uint64_t i = 0; i < cfg.rows_per_batch; ++i) {
      key = (key + 7919) % keyspace;  // co-prime stride: spread + overwrite
      ups.push_back(Update::Insert(
          {Value(static_cast<int64_t>(key)), Value(std::string(40, 'x'))}));
    }
    tickets.push_back(session.Submit(std::move(batch)));
  }
  bool done = dep.RunUntil(
      [&tickets] {
        for (const client::Ticket& t : tickets) {
          if (!t.epoch.done()) return false;
        }
        return true;
      },
      3600 * sim::kMicrosPerSec);
  if (!done) {
    std::fprintf(stderr, "publish stream stalled at window %zu\n", cfg.window);
    std::exit(1);
  }
  for (const client::Ticket& t : tickets) {
    if (!t.epoch.ok()) {
      std::fprintf(stderr, "publish failed: %s\n",
                   t.epoch.status().ToString().c_str());
      std::exit(1);
    }
  }

  PhaseResult r;
  r.window = cfg.window;
  r.wall_s = bench::WallSeconds() - wall0;
  r.sim_s = static_cast<double>(dep.sim().now()) / 1e6 - sim0;
  r.tuples = batches * cfg.rows_per_batch;
  r.publishes = batches;
  r.wire_bytes = dep.network().total_bytes();
  const auto& ps = dep.publisher(0).pipeline_stats();
  r.put_frames = ps.put_frames;
  r.chained = ps.chained;
  for (size_t i = 0; i < dep.size(); ++i) {
    const auto& ib = dep.network().inbox_stats(static_cast<net::NodeId>(i));
    r.max_inbox_msgs = std::max(r.max_inbox_msgs, ib.max_messages);
    r.max_inbox_bytes = std::max(r.max_inbox_bytes, ib.max_bytes);
  }
  r.throttle_shrinks = session.stats().throttle_shrinks;
  r.min_window_seen = session.stats().min_window_seen;
  return r;
}

void Report(bench::JsonReport& report, const std::string& name,
            const PhaseResult& r) {
  report.AddTimed(
      name, static_cast<double>(r.tuples), r.wall_s, r.sim_s,
      static_cast<double>(r.wire_bytes),
      {{"sim_tuples_per_sec",
        r.sim_s > 0 ? static_cast<double>(r.tuples) / r.sim_s : 0},
       {"publishes", static_cast<double>(r.publishes)},
       {"put_frames", static_cast<double>(r.put_frames)},
       {"chained", static_cast<double>(r.chained)},
       {"max_inbox_msgs", static_cast<double>(r.max_inbox_msgs)},
       {"max_inbox_bytes", static_cast<double>(r.max_inbox_bytes)},
       {"throttle_shrinks", static_cast<double>(r.throttle_shrinks)},
       {"min_window_seen", static_cast<double>(r.min_window_seen)}});
  std::printf(
      "%-28s window=%zu tuples=%" PRIu64 " sim_s=%.3f wall_s=%.3f "
      "sim_tuples_per_sec=%.0f put_frames=%" PRIu64 " chained=%" PRIu64
      " max_inbox_msgs=%" PRIu64 " throttle_shrinks=%" PRIu64 "\n",
      name.c_str(), r.window, r.tuples, r.sim_s, r.wall_s,
      r.sim_s > 0 ? static_cast<double>(r.tuples) / r.sim_s : 0, r.put_frames,
      r.chained, r.max_inbox_msgs, r.throttle_shrinks);
}

}  // namespace

int main() {
  bench::Header("pipelined batched publishing (client::Session)");
  bench::JsonReport report("pipelined_publish");
  const uint64_t rows = bench::StbTuples();
  std::printf("%" PRIu64 " rows per phase\n", rows);

  // Primary sweep: wide-area profile, windows 1/2/4/8.
  PhaseResult wan[4];
  const size_t windows[4] = {1, 2, 4, 8};
  for (int i = 0; i < 4; ++i) {
    PhaseConfig cfg;
    cfg.window = windows[i];
    cfg.link = WanLink();
    wan[i] = RunPhase(cfg, rows);
    Report(report, "wan_window_" + std::to_string(windows[i]), wan[i]);
  }

  // Reference: Gigabit LAN, where the write payload (not latency) dominates.
  for (size_t w : {size_t{1}, size_t{4}}) {
    PhaseConfig cfg;
    cfg.window = w;
    PhaseResult r = RunPhase(cfg, rows);
    Report(report, "lan_window_" + std::to_string(w), r);
  }

  // Admission control under overload: every peer advertises heavy load; the
  // window-8 session must throttle down (to 1) and still commit everything.
  {
    PhaseConfig cfg;
    cfg.window = 8;
    cfg.injected_peer_load = 100000;
    PhaseResult r = RunPhase(cfg, rows);
    Report(report, "overload_injected_window_8", r);
  }

  double speedup = wan[0].sim_s > 0 && wan[2].sim_s > 0
                       ? wan[0].sim_s / wan[2].sim_s
                       : 0;
  std::printf("\nWAN sim speedup window4/window1: %.2fx\n", speedup);
  std::printf("WAN inbox depth: w1=%" PRIu64 " w8=%" PRIu64 "\n",
              wan[0].max_inbox_msgs, wan[3].max_inbox_msgs);
  return 0;
}
