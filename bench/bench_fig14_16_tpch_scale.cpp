// Figures 14, 16: TPC-H scaling with database size (SF 0.25-4 at paper
// scale, 8 nodes). Reports running time and total traffic per query.
#include "bench/bench_util.h"

using namespace orchestra;
using namespace orchestra::bench;

int main() {
  Header("Figures 14/16: TPC-H vs scale factor (8 nodes)");
  std::printf("# paper sweep: SF 0.25..4; this run multiplies each by %.4f\n",
              TpchSf(1.0));
  std::printf("query,relative_sf,time_s,total_traffic_MB,rows\n");

  JsonReport report("fig14_16_tpch_scale");
  for (double relative : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    workload::TpchConfig cfg;
    cfg.scale_factor = TpchSf(relative);
    cfg.num_partitions = 32;
    auto cluster = MakeCluster(workload::TpchGenerate(cfg), 8);
    std::string sf_tag = "sf" + std::to_string(relative).substr(0, 4);
    ReportLoad(report, "publish_" + sf_tag, cluster);
    for (const std::string& q : workload::TpchQueryNames()) {
      auto plan = PlanSql(cluster, workload::TpchQuerySql(q));
      RunMetrics m = RunQuery(cluster, plan);
      ReportRun(report, "query_" + q + "_" + sf_tag, m);
      std::printf("%s,%.2f,%.3f,%.2f,%zu\n", q.c_str(), relative, m.time_s,
                  m.total_mb, m.rows);
      std::fflush(stdout);
    }
  }
  return 0;
}
