// Sustained-overwrite storage-footprint bench: the perf side of the
// multi-epoch GC story. One deployment publishes continuous overwrite
// traffic over a fixed working set; we report publish throughput and the
// cluster-wide storage footprint with GC off (every version retained — the
// seed behavior) versus GC on (watermark = epoch - keep). The JSON makes the
// footprint-bounded claim machine-checkable across PRs: with GC on,
// live_records must stay flat as rounds grow; with GC off it grows linearly.
//
// ORCHESTRA_BENCH_SMOKE=1 shrinks rounds ~5x for CI smoke runs.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "deploy/deployment.h"
#include "storage/publisher.h"

namespace orchestra {
namespace {

bool Smoke() {
  const char* env = std::getenv("ORCHESTRA_BENCH_SMOKE");
  return env != nullptr && std::string(env) == "1";
}

storage::RelationDef ChurnRelation() {
  storage::RelationDef def;
  def.name = "hot";
  def.schema = storage::Schema(
      {{"k", storage::ValueType::kInt64}, {"v", storage::ValueType::kString}},
      1);
  def.num_partitions = 16;
  return def;
}

struct RunResult {
  double wall_s = 0;
  double sim_s = 0;
  double wire_bytes = 0;
  uint64_t tuples = 0;
  uint64_t live_records = 0;
  uint64_t log_records = 0;
  double arena_mb = 0;
  double dead_fraction_max = 0;
  uint64_t gc_retired = 0;
  uint64_t epochs = 0;
};

RunResult RunSustained(uint64_t gc_keep, size_t rounds, size_t keys,
                       size_t updates_per_round) {
  deploy::DeploymentOptions opts;
  opts.num_nodes = 4;
  opts.replication = 3;
  opts.gc_keep_epochs = gc_keep;
  opts.store.compaction_min_records = 256;
  deploy::Deployment dep(opts);
  Rng rng(7);

  RunResult r;
  if (!dep.CreateRelation(0, ChurnRelation()).ok()) std::exit(1);
  double wall0 = bench::WallSeconds();
  for (size_t round = 0; round < rounds; ++round) {
    storage::UpdateBatch batch;
    auto& ups = batch["hot"];
    for (size_t i = 0; i < updates_per_round; ++i) {
      ups.push_back(storage::Update::Insert(
          storage::Tuple{storage::Value(static_cast<int64_t>(rng.Uniform(keys))),
                         storage::Value(rng.AlphaString(32))}));
    }
    auto e = dep.Publish(0, std::move(batch));
    if (!e.ok()) {
      std::fprintf(stderr, "publish failed: %s\n", e.status().ToString().c_str());
      std::exit(1);
    }
    r.epochs = *e;
    r.tuples += updates_per_round;
  }
  dep.RunFor(2 * sim::kMicrosPerSec);  // drain watermark advertisements + GC
  r.wall_s = bench::WallSeconds() - wall0;
  r.sim_s = static_cast<double>(dep.sim().now()) / 1e6;
  r.wire_bytes = static_cast<double>(dep.network().total_bytes());
  for (size_t i = 0; i < dep.size(); ++i) {
    const auto& store = dep.storage(i).store();
    r.live_records += store.entry_count();
    r.log_records += store.log_size();
    r.arena_mb += static_cast<double>(store.arena_bytes()) / 1e6;
    r.dead_fraction_max = std::max(r.dead_fraction_max, store.dead_fraction());
    const auto& gs = dep.storage(i).gc_stats();
    r.gc_retired += gs.retired_data + gs.retired_pages + gs.retired_coords +
                    gs.retired_tombstones;
  }
  return r;
}

void Report(bench::JsonReport& report, const std::string& name,
            const RunResult& r) {
  report.AddTimed(name, static_cast<double>(r.tuples), r.wall_s, r.sim_s,
                  r.wire_bytes,
                  {{"live_records", static_cast<double>(r.live_records)},
                   {"log_records", static_cast<double>(r.log_records)},
                   {"arena_mb", r.arena_mb},
                   {"dead_fraction_max", r.dead_fraction_max},
                   {"gc_retired", static_cast<double>(r.gc_retired)},
                   {"epochs", static_cast<double>(r.epochs)}});
  std::printf("%s,%llu,%.3f,%llu,%llu,%.2f,%.3f\n", name.c_str(),
              static_cast<unsigned long long>(r.tuples), r.wall_s,
              static_cast<unsigned long long>(r.live_records),
              static_cast<unsigned long long>(r.log_records), r.arena_mb,
              r.dead_fraction_max);
}

// --------------------------------------------------------------------------
// Multi-writer contention sweep: W concurrent sessions (disjoint key
// stripes, one participant each) race for the same epoch chain with
// abandonment fencing armed. Reports committed-tuple throughput plus the
// contention machinery's work — claim conflicts, re-bases, fence activity —
// as the writer count scales 1 -> 32. Every batch must commit (same-batch
// retry on failure); a batch that cannot commit within the attempt budget
// is a liveness bug and fails the bench.

struct ContentionResult {
  double wall_s = 0;
  double sim_s = 0;
  double wire_bytes = 0;
  uint64_t tuples = 0;
  uint64_t commits = 0;
  uint64_t conflicts = 0;
  uint64_t rebases = 0;
  uint64_t fenced_skips = 0;
  uint64_t fences_granted = 0;
  uint64_t chain_epoch = 0;
};

ContentionResult RunContention(size_t writers, size_t rounds,
                               size_t updates_per_round) {
  deploy::DeploymentOptions opts;
  opts.num_nodes = writers + 2;
  opts.replication = 3;
  opts.fence_after_us = 8 * sim::kMicrosPerSec;
  deploy::Deployment dep(opts);
  Rng rng(11);

  ContentionResult r;
  if (!dep.CreateRelation(0, ChurnRelation()).ok()) std::exit(1);
  const size_t stripe = 64;  // per-writer key range: disjoint update logs
  double wall0 = bench::WallSeconds();
  for (size_t round = 0; round < rounds; ++round) {
    // Everyone submits in the same sim instant: maximal claim contention.
    std::vector<storage::UpdateBatch> pending(writers);
    std::vector<size_t> owner(writers);
    for (size_t w = 0; w < writers; ++w) {
      auto& ups = pending[w]["hot"];
      for (size_t i = 0; i < updates_per_round; ++i) {
        ups.push_back(storage::Update::Insert(storage::Tuple{
            storage::Value(static_cast<int64_t>(w * stripe +
                                                rng.Uniform(stripe))),
            storage::Value(rng.AlphaString(32))}));
      }
      owner[w] = w;
    }
    for (int attempt = 0; attempt < 16 && !pending.empty(); ++attempt) {
      std::vector<client::Ticket> tickets;
      tickets.reserve(pending.size());
      for (size_t i = 0; i < pending.size(); ++i) {
        tickets.push_back(dep.session(owner[i]).Submit(pending[i]));
      }
      bool all_done = dep.RunUntil(
          [&tickets] {
            for (const client::Ticket& t : tickets) {
              if (!t.epoch.done()) return false;
            }
            return true;
          },
          600 * sim::kMicrosPerSec);
      if (!all_done) {
        std::fprintf(stderr, "contention w=%zu: ticket wedged\n", writers);
        std::exit(1);
      }
      std::vector<storage::UpdateBatch> failed;
      std::vector<size_t> failed_owner;
      for (size_t i = 0; i < tickets.size(); ++i) {
        if (tickets[i].epoch.ok()) {
          r.commits += 1;
          r.tuples += updates_per_round;
          r.chain_epoch = std::max(r.chain_epoch,
                                   static_cast<uint64_t>(tickets[i].epoch.value()));
        } else {
          // The liveness contract: the SAME batch retries from the SAME
          // participant until it commits.
          failed.push_back(std::move(pending[i]));
          failed_owner.push_back(owner[i]);
        }
      }
      pending = std::move(failed);
      owner = std::move(failed_owner);
    }
    if (!pending.empty()) {
      std::fprintf(stderr, "contention w=%zu: batch never committed\n",
                   writers);
      std::exit(1);
    }
  }
  r.wall_s = bench::WallSeconds() - wall0;
  r.sim_s = static_cast<double>(dep.sim().now()) / 1e6;
  r.wire_bytes = static_cast<double>(dep.network().total_bytes());
  for (size_t w = 0; w < writers; ++w) {
    const auto& ps = dep.publisher(w).pipeline_stats();
    r.conflicts += ps.epoch_conflicts;
    r.rebases += ps.rebases;
    r.fenced_skips += ps.fenced_skips;
  }
  for (size_t i = 0; i < dep.size(); ++i) {
    r.fences_granted += dep.storage(i).counters().fences_granted;
  }
  return r;
}

void ReportContention(bench::JsonReport& report, const std::string& name,
                      const ContentionResult& r) {
  report.AddTimed(name, static_cast<double>(r.tuples), r.wall_s, r.sim_s,
                  r.wire_bytes,
                  {{"commits", static_cast<double>(r.commits)},
                   {"conflicts", static_cast<double>(r.conflicts)},
                   {"rebases", static_cast<double>(r.rebases)},
                   {"fenced_skips", static_cast<double>(r.fenced_skips)},
                   {"fences_granted", static_cast<double>(r.fences_granted)},
                   {"chain_epoch", static_cast<double>(r.chain_epoch)}});
  std::printf("%s,%llu,%.3f,%.1f,%llu,%llu,%llu\n", name.c_str(),
              static_cast<unsigned long long>(r.commits), r.wall_s, r.sim_s,
              static_cast<unsigned long long>(r.conflicts),
              static_cast<unsigned long long>(r.rebases),
              static_cast<unsigned long long>(r.chain_epoch));
}

void Main() {
  const size_t rounds = Smoke() ? 120 : 600;
  const size_t keys = 96;
  const size_t updates = 12;

  bench::JsonReport report("sustained_churn");
  bench::Header("sustained overwrite traffic: storage footprint, GC off vs on");
  std::printf("name,tuples,wall_s,live_records,log_records,arena_mb,dead_max\n");

  RunResult off = RunSustained(/*gc_keep=*/0, rounds, keys, updates);
  Report(report, "sustained_overwrite_gc_off", off);
  RunResult on = RunSustained(/*gc_keep=*/6, rounds, keys, updates);
  Report(report, "sustained_overwrite_gc_on", on);

  // Footprint-bounded sanity right here in the bench: GC must cut the
  // retained live set by a large factor at these round counts.
  if (on.live_records * 2 >= off.live_records) {
    std::fprintf(stderr, "GC failed to bound footprint: on=%llu off=%llu\n",
                 static_cast<unsigned long long>(on.live_records),
                 static_cast<unsigned long long>(off.live_records));
    std::exit(1);
  }

  bench::Header("multi-writer contention: W sessions race one epoch chain");
  std::printf("name,commits,wall_s,sim_s,conflicts,rebases,chain_epoch\n");
  const size_t contention_rounds = Smoke() ? 4 : 10;
  for (size_t writers : {1u, 4u, 16u, 32u}) {
    ContentionResult c = RunContention(writers, contention_rounds, 8);
    ReportContention(report, "contention_w" + std::to_string(writers), c);
  }
}

}  // namespace
}  // namespace orchestra

int main() {
  orchestra::Main();
  return 0;
}
