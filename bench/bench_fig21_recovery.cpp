// Figure 21: running times for Q1 and Q10 when a node fails mid-query,
// comparing full restart against incremental recomputation (8 nodes, TPC-H
// SF 2 at paper scale). The failure time sweeps over the query's lifetime;
// the paper found incremental recovery ~20% faster than restart.
//
// Part two measures the other recovery axis this repo adds on top of the
// paper: NODE restart cost. A LocalStore is loaded through a real on-disk
// WAL (wal::FileBackend) at 1x/10x/100x store sizes, with checkpoints on vs
// off, and a fresh store recovers from the files. With checkpoints the
// replay tail is bounded by the checkpoint cadence — recovery work stays
// flat while the store grows 100x — and benchdiff enforces that bound on
// the deterministic replayed_records counter (docs/DURABILITY.md).
//
// ORCHESTRA_BENCH_SMOKE=1 shrinks both parts for the CI benchdiff stage;
// the committed baseline in bench/results/ is generated in smoke mode.
#include <unistd.h>

#include "bench/bench_util.h"
#include "localstore/local_store.h"
#include "wal/backend.h"
#include "wal/wal.h"

using namespace orchestra;
using namespace orchestra::bench;

namespace {

bool Smoke() {
  const char* env = std::getenv("ORCHESTRA_BENCH_SMOKE");
  return env != nullptr && std::string(env)[0] == '1';
}

double RunWithFailure(bench::Cluster& cluster, const query::PhysicalPlan& plan,
                      query::QueryOptions::RecoveryMode mode,
                      sim::SimTime fail_at_us, net::NodeId victim) {
  bool done = false;
  Status status;
  query::QueryResult result;
  query::QueryOptions opts;
  opts.recovery = mode;
  cluster.dep->query(0).Execute(plan, cluster.epoch, opts,
                                [&](Status st, query::QueryResult r) {
                                  status = st;
                                  result = std::move(r);
                                  done = true;
                                });
  cluster.dep->RunFor(fail_at_us);
  if (!done) cluster.dep->KillNode(victim, /*update_routing=*/false);
  cluster.dep->RunUntil([&] { return done; }, 3600 * sim::kMicrosPerSec);
  if (!status.ok()) {
    std::fprintf(stderr, "failure run error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
  return static_cast<double>(result.execution_us) / 1e6;
}

void QueryRecoveryPart(JsonReport& report) {
  // Run 4x larger than the other small-scale benches: the restart/recovery
  // gap is about re-paying elapsed work, which a too-tiny query hides behind
  // fixed recovery costs (the paper's SF-2 queries run for many seconds).
  // Smoke keeps the default small sizing and a single failure point.
  double sf = TpchSf(2.0) * (PaperScale() || Smoke() ? 1.0 : 4.0);
  std::printf("# paper: SF 2, failure at varying times; recovery beat restart ~20%%\n");
  std::printf("# this run: SF %.4f\n", sf);
  std::printf("query,failure_frac,failure_time_s,restart_time_s,recovery_time_s,no_failure_time_s\n");

  std::vector<double> fracs = Smoke() ? std::vector<double>{0.5}
                                      : std::vector<double>{0.2, 0.5, 0.8};
  for (const std::string& q : {std::string("Q1"), std::string("Q10")}) {
    workload::TpchConfig cfg;
    cfg.scale_factor = sf;
    cfg.num_partitions = 32;
    auto data = workload::TpchGenerate(cfg);
    double base_s;
    {
      auto cluster = MakeCluster(data, 8);
      ReportLoad(report, "publish_" + q, cluster);
      auto plan = PlanSql(cluster, workload::TpchQuerySql(q));
      RunMetrics base = RunQuery(cluster, plan);
      ReportRun(report, "query_" + q + "_no_failure", base);
      base_s = base.time_s;
    }

    for (double frac : fracs) {
      auto fail_at = static_cast<sim::SimTime>(frac * base_s * 1e6);
      // Each trial kills a node on a *healthy* cluster (the paper reruns the
      // experiment per failure point), so rebuild between modes.
      double restart, recovery;
      {
        auto cluster = MakeCluster(data, 8);
        auto plan = PlanSql(cluster, workload::TpchQuerySql(q));
        restart = RunWithFailure(cluster, plan,
                                 query::QueryOptions::RecoveryMode::kRestart,
                                 fail_at, 5);
      }
      {
        auto cluster = MakeCluster(data, 8);
        auto plan = PlanSql(cluster, workload::TpchQuerySql(q));
        recovery = RunWithFailure(cluster, plan,
                                  query::QueryOptions::RecoveryMode::kIncremental,
                                  fail_at, 5);
      }
      std::printf("%s,%.1f,%.3f,%.3f,%.3f,%.3f\n", q.c_str(), frac,
                  static_cast<double>(fail_at) / 1e6, restart, recovery, base_s);
      std::string tag = q + "_f" + std::to_string(frac).substr(0, 3);
      report.AddTimed("restart_" + tag, 1, 0, restart);
      report.AddTimed("recovery_" + tag, 1, 0, recovery);
      std::fflush(stdout);
    }
  }
}

// --------------------------------------------------------------------------
// Part two: LocalStore restart recovery through a real on-disk WAL.

/// Loads `records` distinct keys through a FileBackend-backed store, makes
/// the tail durable, then times a cold Recover() on a fresh store sharing
/// the same files. Returns through `report` under `name`.
void MeasureStoreRecovery(JsonReport& report, const std::string& name,
                          const std::string& dir, size_t records,
                          uint64_t checkpoint_every) {
  auto backend = std::make_shared<wal::FileBackend>(dir);
  localstore::StoreOptions o;
  o.wal_backend = backend;
  // The load phase is not what this bench measures: sync only on segment
  // seal, then once explicitly at the end, so durability is real but the
  // fill loop is not fsync-bound.
  o.wal.sync_every_records = 0;
  o.checkpoint_every_records = checkpoint_every;
  std::string value(96, 'v');

  double load_wall;
  {
    localstore::LocalStore store(o);
    double w0 = WallSeconds();
    char key[32];
    for (size_t i = 0; i < records; ++i) {
      std::snprintf(key, sizeof(key), "rec-%010zu", i);
      if (!store.Put(key, value).ok()) {
        std::fprintf(stderr, "load put failed\n");
        std::exit(1);
      }
    }
    store.wal()->Sync();
    load_wall = WallSeconds() - w0;
  }  // close the loading store before recovering into a new one

  localstore::LocalStore fresh(o);
  double w0 = WallSeconds();
  Status rec = fresh.Recover();
  double recover_wall = WallSeconds() - w0;
  if (!rec.ok() || fresh.entry_count() != records) {
    std::fprintf(stderr, "recovery failed: %s (entries %zu/%zu)\n",
                 rec.ToString().c_str(), fresh.entry_count(), records);
    std::exit(1);
  }
  const wal::WalStats& ws = fresh.wal()->stats();
  std::printf("%s,%zu,%llu,%.4f,%.4f,%llu,%llu\n", name.c_str(), records,
              static_cast<unsigned long long>(checkpoint_every), load_wall,
              recover_wall, static_cast<unsigned long long>(ws.replayed_records),
              static_cast<unsigned long long>(ws.snapshot_records));
  report.AddTimed(
      name, static_cast<double>(records), recover_wall, 0, 0,
      {{"replayed_records", static_cast<double>(ws.replayed_records)},
       {"snapshot_records", static_cast<double>(ws.snapshot_records)},
       {"checkpoint_every", static_cast<double>(checkpoint_every)},
       {"load_wall_s", load_wall}});

  // Reset the directory for the next configuration.
  for (const std::string& f : backend->List()) backend->Remove(f).ok();
}

void StoreRecoveryPart(JsonReport& report) {
  std::printf("# node restart: recovery cost vs store size, checkpoints on/off\n");
  std::printf("config,records,checkpoint_every,load_wall_s,recover_wall_s,replayed_records,snapshot_records\n");
  char tmpl[] = "/tmp/orchestra-recovery-XXXXXX";
  if (mkdtemp(tmpl) == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    std::exit(1);
  }
  // 100x at the full-mode base is ~400k records; with a fixed checkpoint
  // cadence the load phase re-snapshots O(records) per checkpoint, so the
  // base is kept small enough that the sweep stays in the low gigabytes.
  const size_t base = Smoke() ? 1500 : 4000;
  const uint64_t ckpt_every = Smoke() ? 1024 : 4096;
  for (size_t mult : {size_t{1}, size_t{10}, size_t{100}}) {
    std::string scale = std::to_string(mult) + "x";
    MeasureStoreRecovery(report, "recover_" + scale + "_ckpt_on", tmpl,
                         base * mult, ckpt_every);
    MeasureStoreRecovery(report, "recover_" + scale + "_ckpt_off", tmpl,
                         base * mult, /*checkpoint_every=*/0);
  }
  rmdir(tmpl);
}

}  // namespace

int main() {
  Header("Figure 21: restart vs incremental recovery (8 nodes)");
  JsonReport report("fig21_recovery");
  QueryRecoveryPart(report);
  Header("Node restart recovery: checkpoint + WAL tail replay");
  StoreRecoveryPart(report);
  return 0;
}
