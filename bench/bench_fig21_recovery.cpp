// Figure 21: running times for Q1 and Q10 when a node fails mid-query,
// comparing full restart against incremental recomputation (8 nodes, TPC-H
// SF 2 at paper scale). The failure time sweeps over the query's lifetime;
// the paper found incremental recovery ~20% faster than restart.
#include "bench/bench_util.h"

using namespace orchestra;
using namespace orchestra::bench;

namespace {

double RunWithFailure(bench::Cluster& cluster, const query::PhysicalPlan& plan,
                      query::QueryOptions::RecoveryMode mode,
                      sim::SimTime fail_at_us, net::NodeId victim) {
  bool done = false;
  Status status;
  query::QueryResult result;
  query::QueryOptions opts;
  opts.recovery = mode;
  cluster.dep->query(0).Execute(plan, cluster.epoch, opts,
                                [&](Status st, query::QueryResult r) {
                                  status = st;
                                  result = std::move(r);
                                  done = true;
                                });
  cluster.dep->RunFor(fail_at_us);
  if (!done) cluster.dep->KillNode(victim, /*update_routing=*/false);
  cluster.dep->RunUntil([&] { return done; }, 3600 * sim::kMicrosPerSec);
  if (!status.ok()) {
    std::fprintf(stderr, "failure run error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
  return static_cast<double>(result.execution_us) / 1e6;
}

}  // namespace

int main() {
  Header("Figure 21: restart vs incremental recovery (8 nodes)");
  // Run 4x larger than the other small-scale benches: the restart/recovery
  // gap is about re-paying elapsed work, which a too-tiny query hides behind
  // fixed recovery costs (the paper's SF-2 queries run for many seconds).
  double sf = TpchSf(2.0) * (PaperScale() ? 1.0 : 4.0);
  std::printf("# paper: SF 2, failure at varying times; recovery beat restart ~20%%\n");
  std::printf("# this run: SF %.4f\n", sf);
  std::printf("query,failure_frac,failure_time_s,restart_time_s,recovery_time_s,no_failure_time_s\n");

  JsonReport report("fig21_recovery");
  for (const std::string& q : {std::string("Q1"), std::string("Q10")}) {
    workload::TpchConfig cfg;
    cfg.scale_factor = sf;
    cfg.num_partitions = 32;
    auto data = workload::TpchGenerate(cfg);
    double base_s;
    {
      auto cluster = MakeCluster(data, 8);
      ReportLoad(report, "publish_" + q, cluster);
      auto plan = PlanSql(cluster, workload::TpchQuerySql(q));
      RunMetrics base = RunQuery(cluster, plan);
      ReportRun(report, "query_" + q + "_no_failure", base);
      base_s = base.time_s;
    }

    for (double frac : {0.2, 0.5, 0.8}) {
      auto fail_at = static_cast<sim::SimTime>(frac * base_s * 1e6);
      // Each trial kills a node on a *healthy* cluster (the paper reruns the
      // experiment per failure point), so rebuild between modes.
      double restart, recovery;
      {
        auto cluster = MakeCluster(data, 8);
        auto plan = PlanSql(cluster, workload::TpchQuerySql(q));
        restart = RunWithFailure(cluster, plan,
                                 query::QueryOptions::RecoveryMode::kRestart,
                                 fail_at, 5);
      }
      {
        auto cluster = MakeCluster(data, 8);
        auto plan = PlanSql(cluster, workload::TpchQuerySql(q));
        recovery = RunWithFailure(cluster, plan,
                                  query::QueryOptions::RecoveryMode::kIncremental,
                                  fail_at, 5);
      }
      std::printf("%s,%.1f,%.3f,%.3f,%.3f,%.3f\n", q.c_str(), frac,
                  static_cast<double>(fail_at) / 1e6, restart, recovery, base_s);
      std::string tag = q + "_f" + std::to_string(frac).substr(0, 3);
      report.AddTimed("restart_" + tag, 1, 0, restart);
      report.AddTimed("recovery_" + tag, 1, 0, recovery);
      std::fflush(stdout);
    }
  }
  return 0;
}
