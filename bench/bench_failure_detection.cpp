// Failure-detection methods (§V-C, validated per the abstract): TCP
// connection drop detects a crashed node almost immediately, while a "hung"
// machine is only caught by background pings after ~interval * threshold.
// Reports detection latency (failure -> initiator reacts) for both methods.
#include "bench/bench_util.h"

using namespace orchestra;
using namespace orchestra::bench;

namespace {

struct Detection {
  double detect_s = 0;  // failure -> recovery triggered
  double total_s = 0;
};

Detection Measure(bench::Cluster& cluster, const query::PhysicalPlan& plan,
                  bool hang, sim::SimTime ping_interval_us, int misses,
                  sim::SimTime base_us) {
  bool done = false;
  query::QueryResult result;
  query::QueryOptions opts;
  opts.enable_ping = ping_interval_us > 0;
  opts.ping_interval_us = ping_interval_us > 0 ? ping_interval_us : 1;
  opts.ping_miss_threshold = misses;
  cluster.dep->query(0).Execute(plan, cluster.epoch, opts,
                                [&](Status st, query::QueryResult r) {
                                  if (!st.ok()) {
                                    std::fprintf(stderr, "query failed: %s\n",
                                                 st.ToString().c_str());
                                    std::exit(1);
                                  }
                                  result = std::move(r);
                                  done = true;
                                });
  // Fail 30% into the calibrated runtime.
  sim::SimTime start = cluster.dep->sim().now();
  cluster.dep->RunFor(base_us * 3 / 10);
  sim::SimTime fail_time = cluster.dep->sim().now();
  if (hang) {
    cluster.dep->network().HangNode(4);
  } else {
    cluster.dep->KillNode(4, false);
  }
  cluster.dep->RunUntil([&] { return done; }, 3600 * sim::kMicrosPerSec);
  Detection d;
  d.total_s = static_cast<double>(cluster.dep->sim().now() - start) / 1e6;
  // Time-to-done measured from the failure instant: for a crash this is
  // recovery work plus ~one link latency of detection; for a hang it is
  // dominated by ping_interval * (threshold + 1) of waiting.
  d.detect_s = static_cast<double>(cluster.dep->sim().now() - fail_time) / 1e6;
  (void)result;
  return d;
}

}  // namespace

int main() {
  Header("Failure detection: TCP connection drop vs background pings");
  std::printf("# crash: TCP reset notifies peers within one link latency\n");
  std::printf("# hang:  only pings notice (interval * (threshold+1))\n");
  std::printf("method,failure,ping_interval_ms,time_from_failure_to_done_s\n");

  workload::TpchConfig cfg;
  cfg.scale_factor = TpchSf(0.5);
  cfg.num_partitions = 32;

  auto data = workload::TpchGenerate(cfg);
  JsonReport report("failure_detection");
  sim::SimTime base_us;
  {
    auto cluster = MakeCluster(data, 8);
    ReportLoad(report, "publish_sf05", cluster);
    auto plan = PlanSql(cluster, workload::TpchQuerySql("Q10"));
    base_us = static_cast<sim::SimTime>(RunQuery(cluster, plan).time_s * 1e6);
    std::printf("# failure-free Q10: %.3f s\n", base_us / 1e6);
  }
  {
    auto cluster = MakeCluster(data, 8);
    auto plan = PlanSql(cluster, workload::TpchQuerySql("Q10"));
    Detection d = Measure(cluster, plan, /*hang=*/false, 0, 3, base_us);
    report.AddTimed("tcp_drop_crash", 1, 0, d.detect_s);
    std::printf("tcp_drop,crash,0,%.3f\n", d.detect_s);
  }
  for (double interval_ms : {200.0, 500.0, 1000.0, 2000.0}) {
    auto cluster = MakeCluster(data, 8);
    auto plan = PlanSql(cluster, workload::TpchQuerySql("Q10"));
    Detection d = Measure(cluster, plan, /*hang=*/true,
                          static_cast<sim::SimTime>(interval_ms * 1000), 3, base_us);
    report.AddTimed("ping_hang_" + std::to_string(static_cast<int>(interval_ms)) + "ms",
                    1, 0, d.detect_s);
    std::printf("ping,hang,%.0f,%.3f\n", interval_ms, d.detect_s);
    std::fflush(stdout);
  }
  return 0;
}
