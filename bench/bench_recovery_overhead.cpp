// §VI-E "Overhead of Incremental Recomputation": provenance tagging and
// output caching make queries 2-7% slower with <=2% extra traffic in the
// paper. This harness measures the same ablation: every TPC-H query with
// recovery support on vs off.
#include "bench/bench_util.h"

using namespace orchestra;
using namespace orchestra::bench;

int main() {
  Header("Recovery-support overhead (provenance tagging + output caches)");
  double sf = TpchSf(0.5);
  std::printf("# paper: 2-7%% slower, <=2%% extra traffic\n");
  std::printf("query,time_off_s,time_on_s,time_overhead_pct,traffic_off_MB,traffic_on_MB,traffic_overhead_pct\n");

  workload::TpchConfig cfg;
  cfg.scale_factor = sf;
  cfg.num_partitions = 32;
  auto cluster = MakeCluster(workload::TpchGenerate(cfg), 8);
  JsonReport report("recovery_overhead");
  ReportLoad(report, "publish_sf05", cluster);

  for (const std::string& q : workload::TpchQueryNames()) {
    auto plan = PlanSql(cluster, workload::TpchQuerySql(q));
    query::QueryOptions off;
    off.provenance = false;
    off.recovery = query::QueryOptions::RecoveryMode::kNone;
    RunMetrics m_off = RunQuery(cluster, plan, off);
    query::QueryOptions on;  // defaults: provenance + incremental recovery
    RunMetrics m_on = RunQuery(cluster, plan, on);
    ReportRun(report, "query_" + q + "_recovery_off", m_off);
    ReportRun(report, "query_" + q + "_recovery_on", m_on);
    std::printf("%s,%.3f,%.3f,%.1f,%.2f,%.2f,%.1f\n", q.c_str(), m_off.time_s,
                m_on.time_s, 100.0 * (m_on.time_s / m_off.time_s - 1.0),
                m_off.total_mb, m_on.total_mb,
                100.0 * (m_on.total_mb / m_off.total_mb - 1.0));
    std::fflush(stdout);
  }
  return 0;
}
