// §VI-E "Overhead of Incremental Recomputation": provenance tagging and
// output caching make queries 2-7% slower with <=2% extra traffic in the
// paper. This harness measures the same ablation: every TPC-H query with
// recovery support on vs off.
//
// Part two measures the durability ablation this repo adds: the LocalStore
// write path with no WAL, the deterministic in-memory WAL the simulator
// uses, and the on-disk WAL the recovery bench uses — with and without
// per-record sync and background checkpoints — so the cost of crash safety
// is tracked per layer (docs/DURABILITY.md).
//
// ORCHESTRA_BENCH_SMOKE=1 shrinks both parts for the CI benchdiff stage;
// the committed baseline in bench/results/ is generated in smoke mode.
#include <unistd.h>

#include "bench/bench_util.h"
#include "localstore/local_store.h"
#include "wal/backend.h"
#include "wal/wal.h"

using namespace orchestra;
using namespace orchestra::bench;

namespace {

bool Smoke() {
  const char* env = std::getenv("ORCHESTRA_BENCH_SMOKE");
  return env != nullptr && std::string(env)[0] == '1';
}

void QueryOverheadPart(JsonReport& report) {
  double sf = TpchSf(0.5) * (Smoke() ? 0.5 : 1.0);
  std::printf("# paper: 2-7%% slower, <=2%% extra traffic\n");
  std::printf("query,time_off_s,time_on_s,time_overhead_pct,traffic_off_MB,traffic_on_MB,traffic_overhead_pct\n");

  workload::TpchConfig cfg;
  cfg.scale_factor = sf;
  cfg.num_partitions = 32;
  auto cluster = MakeCluster(workload::TpchGenerate(cfg), 8);
  ReportLoad(report, "publish_sf05", cluster);

  std::vector<std::string> queries =
      Smoke() ? std::vector<std::string>{"Q1", "Q3", "Q10"}
              : workload::TpchQueryNames();
  for (const std::string& q : queries) {
    auto plan = PlanSql(cluster, workload::TpchQuerySql(q));
    query::QueryOptions off;
    off.provenance = false;
    off.recovery = query::QueryOptions::RecoveryMode::kNone;
    RunMetrics m_off = RunQuery(cluster, plan, off);
    query::QueryOptions on;  // defaults: provenance + incremental recovery
    RunMetrics m_on = RunQuery(cluster, plan, on);
    ReportRun(report, "query_" + q + "_recovery_off", m_off);
    ReportRun(report, "query_" + q + "_recovery_on", m_on);
    std::printf("%s,%.3f,%.3f,%.1f,%.2f,%.2f,%.1f\n", q.c_str(), m_off.time_s,
                m_on.time_s, 100.0 * (m_on.time_s / m_off.time_s - 1.0),
                m_off.total_mb, m_on.total_mb,
                100.0 * (m_on.total_mb / m_off.total_mb - 1.0));
    std::fflush(stdout);
  }
}

// --------------------------------------------------------------------------
// Part two: durability write-path ablation.

/// Runs the same put workload (fresh keys then one overwrite round) through
/// a store configured by `o` and reports wall-clock throughput plus WAL
/// counters.
void RunWritePath(JsonReport& report, const std::string& name,
                  const localstore::StoreOptions& o, size_t records) {
  localstore::LocalStore store(o);
  std::string value(96, 'v');
  char key[32];
  double w0 = WallSeconds();
  for (size_t i = 0; i < 2 * records; ++i) {
    std::snprintf(key, sizeof(key), "rec-%010zu", i % records);
    if (!store.Put(key, value).ok()) {
      std::fprintf(stderr, "put failed\n");
      std::exit(1);
    }
  }
  if (store.wal() != nullptr) store.wal()->Sync();
  double wall = WallSeconds() - w0;
  double checkpoints = 0, bytes = 0, syncs = 0;
  if (store.wal() != nullptr) {
    const wal::WalStats& ws = store.wal()->stats();
    checkpoints = static_cast<double>(ws.checkpoints);
    bytes = static_cast<double>(ws.bytes_appended);
    syncs = static_cast<double>(ws.syncs);
  }
  std::printf("%s,%zu,%.4f,%.0f\n", name.c_str(), 2 * records, wall,
              2 * records / wall);
  report.AddTimed(name, static_cast<double>(2 * records), wall, 0, 0,
                  {{"wal_bytes", bytes},
                   {"wal_syncs", syncs},
                   {"checkpoints", checkpoints}});
}

void WritePathPart(JsonReport& report) {
  std::printf("# durability write path: puts/sec by WAL configuration\n");
  std::printf("config,ops,wall_s,ops_per_sec\n");
  const size_t records = Smoke() ? 20000 : 200000;

  localstore::StoreOptions off;
  RunWritePath(report, "writepath_wal_off", off, records);

  localstore::StoreOptions mem;
  mem.wal_backend = std::make_shared<wal::MemoryBackend>();
  RunWritePath(report, "writepath_wal_mem", mem, records);

  localstore::StoreOptions mem_ckpt;
  mem_ckpt.wal_backend = std::make_shared<wal::MemoryBackend>();
  mem_ckpt.checkpoint_every_records = records / 2;
  RunWritePath(report, "writepath_wal_mem_ckpt", mem_ckpt, records);

  char tmpl[] = "/tmp/orchestra-writepath-XXXXXX";
  if (mkdtemp(tmpl) == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    std::exit(1);
  }
  {
    localstore::StoreOptions file;
    auto backend = std::make_shared<wal::FileBackend>(tmpl);
    file.wal_backend = backend;
    file.wal.sync_every_records = 0;  // sync on seal + once at the end
    RunWritePath(report, "writepath_wal_file", file, records);
    for (const std::string& f : backend->List()) backend->Remove(f).ok();
  }
  {
    localstore::StoreOptions file_sync;
    auto backend = std::make_shared<wal::FileBackend>(tmpl);
    file_sync.wal_backend = backend;
    file_sync.wal.sync_every_records = 32;  // fsync batches of 32 records
    RunWritePath(report, "writepath_wal_file_sync32", file_sync, records);
    for (const std::string& f : backend->List()) backend->Remove(f).ok();
  }
  rmdir(tmpl);
}

}  // namespace

int main() {
  Header("Recovery-support overhead (provenance tagging + output caches)");
  JsonReport report("recovery_overhead");
  QueryOverheadPart(report);
  Header("Durability write-path overhead (WAL ablation)");
  WritePathPart(report);
  return 0;
}
