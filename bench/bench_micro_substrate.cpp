// Micro-benchmarks for the substrate primitives: the embedded local store
// (put/get/scan hot paths of the publish and retrieve pipelines), SHA-1,
// ring arithmetic, routing-table lookup, and tuple block marshalling with
// compression. Self-contained timing harness; emits both a CSV to stdout and
// BENCH_micro_substrate.json (see bench_util.h) so the perf trajectory of
// the storage substrate is tracked across PRs.
//
// ORCHESTRA_BENCH_SMOKE=1 shrinks op counts ~50x for CI smoke runs.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/compress.h"
#include "common/rng.h"
#include "hash/hash_id.h"
#include "localstore/local_store.h"
#include "overlay/ring.h"
#include "query/block.h"
#include "storage/keys.h"
#include "storage/value.h"

namespace orchestra {
namespace {

bench::JsonReport* g_report = nullptr;
uint64_t g_sink = 0;  // defeats dead-code elimination; reported in the JSON

bool Smoke() {
  const char* env = std::getenv("ORCHESTRA_BENCH_SMOKE");
  return env != nullptr && std::string(env) == "1";
}

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Report(const std::string& name, double ops, double wall_s,
            double bytes = 0) {
  std::vector<std::pair<std::string, double>> extra;
  if (bytes > 0 && wall_s > 0) extra.emplace_back("bytes_per_sec", bytes / wall_s);
  g_report->AddTimed(name, ops, wall_s, 0, 0, std::move(extra));
  std::printf("%s,%.0f,%.4f,%.3g\n", name.c_str(), ops, wall_s,
              wall_s > 0 ? ops / wall_s : 0);
  std::fflush(stdout);
}

/// Keys shaped like the real data-record keys the storage service writes:
/// 'D' <rel> <hash:20B> <key bytes> <epoch> — ~50-60 bytes each.
std::vector<std::string> MakeDataKeys(size_t n, Rng& rng) {
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    HashId h = HashId::OfBytes("bench-key-" + std::to_string(i));
    out.push_back(storage::keys::Data("stb_r", h,
                                      "k" + std::to_string(rng.NextU64() % n),
                                      1 + (i & 7)));
  }
  return out;
}

void BenchLocalStore() {
  const size_t n_put = Smoke() ? 4000 : 200000;
  const size_t n_ops = Smoke() ? 20000 : 1000000;
  Rng rng(3);
  std::vector<std::string> keys = MakeDataKeys(n_put, rng);
  std::vector<std::string> values;
  values.reserve(256);
  for (int i = 0; i < 256; ++i) values.push_back(rng.AlphaString(64));

  // Fresh-key put throughput (the kPutTuples receive path).
  localstore::LocalStore store;
  double t0 = Now();
  for (size_t i = 0; i < keys.size(); ++i) {
    store.Put(keys[i], values[i & 255]).ok();
  }
  Report("localstore_put", static_cast<double>(keys.size()), Now() - t0);

  // Overwrite put throughput (hot keys republished across epochs).
  t0 = Now();
  for (size_t i = 0; i < n_ops; ++i) {
    store.Put(keys[i % keys.size()], values[i & 255]).ok();
  }
  Report("localstore_overwrite", static_cast<double>(n_ops), Now() - t0);

  // Point-lookup throughput with a copying Get (kGetTuple path).
  t0 = Now();
  for (size_t i = 0; i < n_ops; ++i) {
    auto v = store.Get(keys[(i * 7) % keys.size()]);
    g_sink += v.ok() ? v.value().size() : 0;
  }
  Report("localstore_get", static_cast<double>(n_ops), Now() - t0);

  // Zero-copy lookup (the retuned kGetTuple/kFetchTuples path).
  t0 = Now();
  for (size_t i = 0; i < n_ops; ++i) {
    auto v = store.GetView(keys[(i * 7) % keys.size()]);
    g_sink += v.ok() ? v.value().size() : 0;
  }
  Report("localstore_get_view", static_cast<double>(n_ops), Now() - t0);

  // Membership probes, half missing (kReplicaPush dedup path).
  t0 = Now();
  for (size_t i = 0; i < n_ops; ++i) {
    g_sink += store.Contains(keys[i % keys.size()]) ? 1 : 0;
    g_sink += store.Contains("absent-key") ? 1 : 0;
  }
  Report("localstore_contains", static_cast<double>(2 * n_ops), Now() - t0);

  // Ordered range scan (the single-pass page scan of §V-B).
  const size_t scan_rounds = Smoke() ? 20 : 500;
  t0 = Now();
  size_t scanned = 0;
  for (size_t round = 0; round < scan_rounds; ++round) {
    for (auto it = store.Seek(""); it.Valid(); it.Next()) {
      g_sink += it.value().size();
      ++scanned;
    }
  }
  Report("localstore_scan", static_cast<double>(scanned), Now() - t0);

  // Prefix-bounded scan (per-relation sweeps, e.g. RebalanceTo).
  std::string prefix = storage::keys::DataPrefix("stb_r");
  t0 = Now();
  scanned = 0;
  for (size_t round = 0; round < scan_rounds; ++round) {
    for (auto it = store.SeekPrefix(prefix);
         localstore::LocalStore::WithinPrefix(it, prefix); it.Next()) {
      g_sink += it.key().size();
      ++scanned;
    }
  }
  Report("localstore_prefix_scan", static_cast<double>(scanned), Now() - t0);

  // Churn: put/delete mix with compaction in the loop (epoch GC pressure).
  localstore::StoreOptions churn_opts;
  churn_opts.compaction_garbage_ratio = 0.4;
  churn_opts.compaction_min_records = 4096;
  localstore::LocalStore churn(churn_opts);
  t0 = Now();
  for (size_t i = 0; i < n_ops; ++i) {
    const std::string& k = keys[i % keys.size()];
    if ((i & 3) == 3) {
      churn.Delete(k).ok();
    } else {
      churn.Put(k, values[i & 255]).ok();
    }
  }
  Report("localstore_churn", static_cast<double>(n_ops), Now() - t0);
  g_sink += churn.stats().compactions;

  // A combined put/get/scan mix approximating one publish + retrieve cycle.
  localstore::LocalStore mixed;
  const size_t mix_rounds = Smoke() ? 2 : 10;
  double mixed_ops = 0;
  t0 = Now();
  for (size_t round = 0; round < mix_rounds; ++round) {
    for (size_t i = 0; i < keys.size(); ++i) {
      mixed.Put(keys[i], values[i & 255]).ok();
    }
    for (size_t i = 0; i < keys.size(); ++i) {
      auto v = mixed.Get(keys[(i * 13) % keys.size()]);
      g_sink += v.ok() ? v.value().size() : 0;
    }
    size_t m = 0;
    for (auto it = mixed.Seek(""); it.Valid(); it.Next()) {
      g_sink += it.value().size();
      ++m;
    }
    mixed_ops += static_cast<double>(2 * keys.size() + m);
  }
  Report("localstore_mixed", mixed_ops, Now() - t0);
}

void BenchSha1() {
  const size_t reps = Smoke() ? 20000 : 400000;
  std::string small(64, 'x');
  double t0 = Now();
  for (size_t i = 0; i < reps; ++i) {
    small[i & 63] = static_cast<char>('a' + (i & 15));
    g_sink += Sha1(small)[0];
  }
  Report("sha1_64b", static_cast<double>(reps), Now() - t0,
         static_cast<double>(reps * small.size()));

  std::string big(65536, 'y');
  const size_t big_reps = Smoke() ? 50 : 2000;
  t0 = Now();
  for (size_t i = 0; i < big_reps; ++i) g_sink += Sha1(big)[0];
  Report("sha1_64k", static_cast<double>(big_reps), Now() - t0,
         static_cast<double>(big_reps * big.size()));
}

void BenchRouting() {
  std::vector<overlay::Member> members;
  for (int i = 0; i < 100; ++i) {
    members.push_back({static_cast<net::NodeId>(i),
                       HashId::OfBytes("node" + std::to_string(i))});
  }
  auto snap = overlay::RoutingSnapshot::Build(
      1, overlay::AllocationScheme::kBalanced, members);
  Rng rng(1);
  std::vector<HashId> hkeys;
  for (int i = 0; i < 256; ++i) {
    hkeys.push_back(HashId::OfBytes("k" + std::to_string(rng.NextU64())));
  }
  const size_t reps = Smoke() ? 40000 : 2000000;
  double t0 = Now();
  for (size_t i = 0; i < reps; ++i) {
    g_sink += snap.OwnerOf(hkeys[i & 255]);
  }
  Report("routing_lookup_100", static_cast<double>(reps), Now() - t0);
}

void BenchBlockCodec() {
  Rng rng(7);
  query::TupleBlock block;
  block.query_id = 1;
  block.dest_op = 2;
  block.sender = 0;
  for (int i = 0; i < 1024; ++i) {
    query::BlockRow row;
    row.tuple = {storage::Value(static_cast<int64_t>(i)),
                 storage::Value(rng.AlphaString(25)),
                 storage::Value(rng.AlphaString(25)),
                 storage::Value(rng.NextDouble())};
    row.taint = DynamicBitset(16);
    row.taint.Set(static_cast<size_t>(i % 16));
    block.rows.push_back(std::move(row));
  }
  const size_t reps = Smoke() ? 20 : 500;
  double encoded_bytes = static_cast<double>(block.Encode().size());
  double t0 = Now();
  for (size_t i = 0; i < reps; ++i) {
    std::string bytes = block.Encode();
    query::TupleBlock out;
    query::TupleBlock::Decode(bytes, &out).ok();
    g_sink += out.rows.size();
  }
  Report("block_codec_1k_rows", static_cast<double>(reps * 1024), Now() - t0,
         static_cast<double>(reps) * encoded_bytes);
}

void BenchCompress() {
  Rng rng(5);
  std::string payload;
  for (int i = 0; i < 1024; ++i) payload += rng.AlphaString(25);
  const size_t reps = Smoke() ? 100 : 2000;
  double t0 = Now();
  for (size_t i = 0; i < reps; ++i) {
    g_sink += CompressBlock(payload).size();
  }
  Report("compress_25k", static_cast<double>(reps), Now() - t0,
         static_cast<double>(reps * payload.size()));
}

}  // namespace
}  // namespace orchestra

int main() {
  orchestra::bench::JsonReport report("micro_substrate");
  orchestra::g_report = &report;
  std::printf("name,ops,wall_s,ops_per_sec\n");
  orchestra::BenchLocalStore();
  orchestra::BenchSha1();
  orchestra::BenchRouting();
  orchestra::BenchBlockCodec();
  orchestra::BenchCompress();
  report.AddTimed("sink_checksum", static_cast<double>(orchestra::g_sink), 1.0);
  report.Write();
  std::printf("# wrote %s\n", report.Path().c_str());
  return 0;
}
