// Micro-benchmarks (google-benchmark) for the substrate primitives: SHA-1,
// ring arithmetic, routing-table lookup, tuple block marshalling with
// compression, and the embedded local store.
#include <benchmark/benchmark.h>

#include "common/compress.h"
#include "common/rng.h"
#include "hash/hash_id.h"
#include "localstore/local_store.h"
#include "overlay/ring.h"
#include "query/block.h"
#include "storage/value.h"

namespace orchestra {
namespace {

void BM_Sha1(benchmark::State& state) {
  std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(32)->Arg(1024)->Arg(65536);

void BM_HashIdRingMath(benchmark::State& state) {
  HashId a = HashId::OfBytes("a"), b = HashId::OfBytes("b");
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Add(b).Sub(a).ClockwiseMidpoint(b));
  }
}
BENCHMARK(BM_HashIdRingMath);

void BM_RoutingLookup(benchmark::State& state) {
  std::vector<overlay::Member> members;
  for (int i = 0; i < state.range(0); ++i) {
    members.push_back({static_cast<net::NodeId>(i),
                       HashId::OfBytes("node" + std::to_string(i))});
  }
  auto snap = overlay::RoutingSnapshot::Build(1, overlay::AllocationScheme::kBalanced,
                                              members);
  Rng rng(1);
  std::vector<HashId> keys;
  for (int i = 0; i < 256; ++i) {
    keys.push_back(HashId::OfBytes("k" + std::to_string(rng.NextU64())));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(snap.OwnerOf(keys[i++ & 255]));
  }
}
BENCHMARK(BM_RoutingLookup)->Arg(16)->Arg(100)->Arg(1000);

void BM_BlockEncodeDecode(benchmark::State& state) {
  Rng rng(7);
  query::TupleBlock block;
  block.query_id = 1;
  block.dest_op = 2;
  block.sender = 0;
  for (int i = 0; i < state.range(0); ++i) {
    query::BlockRow row;
    row.tuple = {storage::Value(static_cast<int64_t>(i)),
                 storage::Value(rng.AlphaString(25)),
                 storage::Value(rng.AlphaString(25)), storage::Value(rng.NextDouble())};
    row.taint = DynamicBitset(16);
    row.taint.Set(static_cast<size_t>(i % 16));
    block.rows.push_back(std::move(row));
  }
  for (auto _ : state) {
    std::string bytes = block.Encode();
    query::TupleBlock out;
    benchmark::DoNotOptimize(query::TupleBlock::Decode(bytes, &out));
  }
  state.counters["compressed_bytes"] =
      static_cast<double>(block.Encode().size());
  state.counters["raw_bytes"] = static_cast<double>(block.ApproxRawBytes());
}
BENCHMARK(BM_BlockEncodeDecode)->Arg(64)->Arg(1024);

void BM_LocalStorePut(benchmark::State& state) {
  localstore::LocalStore store;
  Rng rng(3);
  uint64_t i = 0;
  for (auto _ : state) {
    store.Put("key-" + std::to_string(i++ % 100000), rng.AlphaString(64)).ok();
  }
}
BENCHMARK(BM_LocalStorePut);

void BM_LocalStoreScan(benchmark::State& state) {
  localstore::LocalStore store;
  Rng rng(3);
  for (int i = 0; i < 50000; ++i) {
    store.Put("key-" + std::to_string(i), rng.AlphaString(32)).ok();
  }
  for (auto _ : state) {
    size_t n = 0;
    for (auto it = store.Seek("key-2"); it.Valid() && n < 1000; it.Next()) ++n;
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_LocalStoreScan);

void BM_CompressStbTuples(benchmark::State& state) {
  Rng rng(5);
  std::string payload;
  for (int i = 0; i < 1024; ++i) payload += rng.AlphaString(25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CompressBlock(payload));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(payload.size()));
}
BENCHMARK(BM_CompressStbTuples);

}  // namespace
}  // namespace orchestra

BENCHMARK_MAIN();
