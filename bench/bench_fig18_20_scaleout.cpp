// Figures 18, 19, 20: larger-scale performance (the EC2 experiment): TPC-H
// SF 10 at paper scale on 10-100 nodes. Reports running time, total traffic,
// and per-node traffic.
#include "bench/bench_util.h"

using namespace orchestra;
using namespace orchestra::bench;

int main() {
  Header("Figures 18/19/20: scale-out to 10-100 nodes (EC2 experiment)");
  double sf = TpchSf(10.0);
  std::printf("# paper: EC2, SF 10; this run: SF %.4f, simulated EC2-like links\n", sf);
  std::printf("query,nodes,time_s,total_traffic_MB,per_node_traffic_MB\n");

  workload::TpchConfig cfg;
  cfg.scale_factor = sf;
  cfg.num_partitions = 200;
  auto data = workload::TpchGenerate(cfg);

  // EC2 "large" instances: ~2GHz cores (slower than the local cluster's
  // 2.4GHz Xeons), fat datacenter network with sub-ms latency.
  net::LinkParams link;
  link.bandwidth_bytes_per_sec = 100.0e6;
  link.latency_us = 300;

  JsonReport report("fig18_20_scaleout");
  for (size_t nodes : {10, 20, 40, 70, 100}) {
    auto cluster = MakeCluster(data, nodes, link);
    ReportLoad(report, "publish_n" + std::to_string(nodes), cluster);
    for (const std::string& q : workload::TpchQueryNames()) {
      auto plan = PlanSql(cluster, workload::TpchQuerySql(q));
      RunMetrics m = RunQuery(cluster, plan);
      ReportRun(report, "query_" + q + "_n" + std::to_string(nodes), m);
      std::printf("%s,%zu,%.3f,%.2f,%.2f\n", q.c_str(), nodes, m.time_s, m.total_mb,
                  m.per_node_mb);
      std::fflush(stdout);
    }
  }
  return 0;
}
