// Figure 17: TPC-H running time vs per-node bandwidth (8 nodes, SF 4 at
// paper scale), the NetEm/HTB wide-area experiment of §VI-C. Also prints the
// latency sensitivity table the paper describes in text ("realistic
// latencies (up to 200ms) had little impact").
#include "bench/bench_util.h"

using namespace orchestra;
using namespace orchestra::bench;

int main() {
  Header("Figure 17: TPC-H running time vs per-node bandwidth (8 nodes)");
  double sf = TpchSf(4.0);
  std::printf("# paper: SF 4; this run: SF %.4f\n", sf);
  std::printf("query,bandwidth_KBps,time_s\n");

  workload::TpchConfig cfg;
  cfg.scale_factor = sf;
  cfg.num_partitions = 32;
  // Load once at full speed (the paper shapes traffic only for queries),
  // then re-shape every link per setting; queries are read-only.
  auto cluster = MakeCluster(workload::TpchGenerate(cfg), 8);
  JsonReport report("fig17_bandwidth");
  ReportLoad(report, "publish_sf4", cluster);

  for (double kbps : {100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0}) {
    net::LinkParams link;
    link.bandwidth_bytes_per_sec = kbps * 1000.0;
    link.latency_us = 100;
    cluster.dep->network().SetAllLinkParams(link);
    for (const std::string& q : workload::TpchQueryNames()) {
      auto plan = PlanSql(cluster, workload::TpchQuerySql(q));
      RunMetrics m = RunQuery(cluster, plan);
      ReportRun(report, "query_" + q + "_kbps" + std::to_string(static_cast<int>(kbps)),
                m);
      std::printf("%s,%.0f,%.3f\n", q.c_str(), kbps, m.time_s);
      std::fflush(stdout);
    }
  }

  Header("Latency sensitivity (paper: text only, plot omitted)");
  std::printf("query,latency_ms,time_s\n");
  for (double ms : {0.1, 20.0, 50.0, 100.0, 200.0}) {
    net::LinkParams link;
    link.bandwidth_bytes_per_sec = 125.0e6;
    link.latency_us = static_cast<sim::SimTime>(ms * 1000.0);
    cluster.dep->network().SetAllLinkParams(link);
    for (const std::string& q : workload::TpchQueryNames()) {
      auto plan = PlanSql(cluster, workload::TpchQuerySql(q));
      RunMetrics m = RunQuery(cluster, plan);
      std::printf("%s,%.1f,%.3f\n", q.c_str(), ms, m.time_s);
      std::fflush(stdout);
    }
  }
  return 0;
}
