#include <chrono>

namespace orchestra::sim {
// Reading the host clock inside the simulated world: must flag.
uint64_t Bad() {
  auto t = std::chrono::system_clock::now();
  return static_cast<uint64_t>(t.time_since_epoch().count());
}
}  // namespace orchestra::sim
