#include "sim/simulator.h"

namespace orchestra::sim {
// Simulated time from the simulator: the sanctioned clock.
uint64_t Good(Simulator* sim) { return sim->now(); }
}  // namespace orchestra::sim
