#include <cstdint>
#include <string>
#include <unordered_map>

namespace orchestra::net {
struct Frame { std::string bytes; };
std::unordered_map<uint64_t, Frame> table_;

// Order-independent aggregation over the same table, with the escape hatch
// documenting why table order cannot reach the trace.
uint64_t TotalBytes() {
  uint64_t n = 0;
  // lint:allow(det-unordered-iter): sum is order-independent; no messages
  // are sent from this loop.
  for (const auto& [id, frame] : table_) n += frame.bytes.size();
  return n;
}
}  // namespace orchestra::net
