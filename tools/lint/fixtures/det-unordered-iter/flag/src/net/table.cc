#include <cstdint>
#include <string>
#include <unordered_map>

namespace orchestra::net {
struct Frame { std::string bytes; };
std::unordered_map<uint64_t, Frame> table_;

// Emission follows hash-table order: must flag.
void EmitAll(void (*send)(const Frame&)) {
  for (const auto& [id, frame] : table_) send(frame);
}
}  // namespace orchestra::net
