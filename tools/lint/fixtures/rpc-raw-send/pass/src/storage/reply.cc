#include "net/rpc.h"

namespace orchestra::storage {
// Replies go through the lifecycle layer's envelope encoder.
void Good(net::NodeHost* host, net::NodeId to, uint64_t req_id,
          std::string body) {
  net::RpcClient::SendReply(host, to, net::ServiceId::kStorage, 1, req_id,
                            Status::OK(), std::move(body));
}
}  // namespace orchestra::storage
