#include "net/node_host.h"

namespace orchestra::storage {
// Sending through the raw network bypasses the pending-call table:
// must flag.
void Bad(net::NodeHost* host, net::NodeId to, std::string body) {
  host->network()->Send(host->node(), to, 0x20001, std::move(body));
}
}  // namespace orchestra::storage
