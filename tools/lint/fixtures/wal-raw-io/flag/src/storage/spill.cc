// Must-flag fixture: raw file I/O in a non-WAL layer. Durability bytes that
// bypass wal::Backend are invisible to the deterministic MemoryBackend and
// to the crash model.
#include <fstream>

namespace orchestra::storage {

void SpillDebugState(const char* path) {
  std::ofstream out(path);
  out << "state\n";
}

}  // namespace orchestra::storage
