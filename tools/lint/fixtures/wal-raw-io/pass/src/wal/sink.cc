// Must-pass fixture: src/wal/ is the sanctioned home for raw file I/O (the
// FileBackend); the rule's exclude covers this whole directory.
#include <cstdio>

namespace orchestra::wal {

bool TouchSegmentFile(const char* path) {
  std::FILE* f = std::fopen(path, "ab");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

}  // namespace orchestra::wal
