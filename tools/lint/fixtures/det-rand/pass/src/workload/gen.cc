#include "common/rng.h"

namespace orchestra::workload {
// Explicitly seeded project PRNG: reproducible bit-for-bit.
uint64_t Good(uint64_t seed) { return Rng(seed).NextU64(); }
}  // namespace orchestra::workload
