#include <cstdlib>

namespace orchestra::workload {
// Unseeded global PRNG: must flag.
int Bad() { return std::rand(); }
}  // namespace orchestra::workload
