#include <cstdint>
#include <string>

namespace orchestra::client {
// Clients hand batches to storage::Publisher, which owns the kPutTuples
// encoder; no frame bytes are built here.
std::string Good() { return {}; }
}  // namespace orchestra::client
