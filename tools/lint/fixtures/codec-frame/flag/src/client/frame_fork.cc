#include <cstdint>

namespace orchestra::client {
constexpr uint16_t kPutTuples = 2;
// Re-declaring / re-encoding the nested tuple frame outside its codec:
// must flag.
uint16_t ForkedEncoder() { return kPutTuples; }
}  // namespace orchestra::client
