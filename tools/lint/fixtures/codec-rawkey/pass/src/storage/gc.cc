#include "storage/keys.h"

namespace orchestra::storage {
// Tag dispatch through the one key codec.
bool IsCoord(std::string_view key) {
  return keys::Tag(key) == keys::kCoordTag;
}
}  // namespace orchestra::storage
