#include <string>
#include <string_view>

namespace orchestra::storage {
// Ad-hoc offset arithmetic on stored-key bytes: must flag.
bool IsCoord(std::string_view key) {
  return !key.empty() && key[0] == 'C';
}
}  // namespace orchestra::storage
