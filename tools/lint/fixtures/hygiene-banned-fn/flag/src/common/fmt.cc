#include <cstdio>

namespace orchestra {
// Unbounded C string API: must flag.
void Bad(char* out, const char* name) {
  sprintf(out, "node-%s", name);
}
}  // namespace orchestra
