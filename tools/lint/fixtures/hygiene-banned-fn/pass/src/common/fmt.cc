#include <cstdio>
#include <string>

namespace orchestra {
// Bounded formatting.
std::string Good(const char* name) {
  char buf[64];
  snprintf(buf, sizeof buf, "node-%s", name);
  return buf;
}
}  // namespace orchestra
