#include <functional>
#include <memory>

namespace orchestra::storage {
// The PR-1 leak class: a closure kept alive by a shared_ptr it captures.
void Bad() {
  auto fn = std::make_shared<std::function<void()>>();
  *fn = [fn]() { (*fn)(); };
}
}  // namespace orchestra::storage
