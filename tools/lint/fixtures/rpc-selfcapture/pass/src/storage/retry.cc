#include <cstdint>

namespace orchestra::storage {
// Retry state lives in the RPC pending-call table (RpcClient::CallFirst),
// owned by value per attempt — no self-referential closure.
struct RetryState { uint32_t attempts = 0; };
}  // namespace orchestra::storage
