#include <cstdint>
#include <map>
#include <string>

namespace orchestra::storage {
struct Rec { uint64_t id; std::string bytes; };
// Keyed by a stable identifier instead of an address.
std::map<uint64_t, int> BuildIndex() { return {}; }
}  // namespace orchestra::storage
