#include <map>
#include <string>

namespace orchestra::storage {
struct Rec { std::string bytes; };
// Pointer-keyed ordered map: iteration follows address order (ASLR-varying).
std::map<Rec*, int> BuildIndex() { return {}; }
}  // namespace orchestra::storage
