#include "storage/keys.h"

namespace orchestra {
// src/common sits at the bottom of the link graph; including upward
// inverts a layer edge and must flag.
int Bad() { return orchestra::storage::keys::kDataTag; }
}  // namespace orchestra
