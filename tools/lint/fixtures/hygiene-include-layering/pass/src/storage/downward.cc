#include "common/status.h"
#include "localstore/local_store.h"
#include "overlay/ring.h"

namespace orchestra::storage {
// storage links localstore + overlay (and their closures): all downward.
Status Good() { return Status::OK(); }
}  // namespace orchestra::storage
