#!/usr/bin/env python3
"""orchestra-lint: project-invariant static analysis.

Checks the invariants that no compiler enforces — deterministic simulation,
single-codec record handling, the async RPC lifecycle rules, and include
layering — and rejects violating code at CI time (`ci/check.sh lint`).

Rule catalog, rationale, and escape hatches: docs/STATIC_ANALYSIS.md.

Usage:
  tools/lint/orchestra_lint.py              # lint <repo>/src
  tools/lint/orchestra_lint.py --root DIR   # lint DIR/src (fixture corpora)
  tools/lint/orchestra_lint.py --selftest   # run the fixture corpus
  tools/lint/orchestra_lint.py --list-rules

Escape hatch: a violating line is suppressed by an annotation on the same
line or the line directly above it, with a mandatory reason:

    // lint:allow(<rule-id>): <why this site is safe>

Exit status: 0 clean, 1 violations, 2 usage/internal error.
"""

import argparse
import os
import re
import sys
from dataclasses import dataclass, field

DOC = "docs/STATIC_ANALYSIS.md"

# ---------------------------------------------------------------------------
# Include layering (hygiene-include-layering)
#
# Mirrors the CMake link graph (one static library per src/ directory,
# linked bottom-up). A layer may include its own headers and those of the
# layers it (transitively) links against; src/common sits at the bottom and
# may not include upward at all.

_LAYER_DEPS = {
    "common": [],
    "hash": ["common"],
    "sim": ["common"],
    "wal": ["common"],
    "localstore": ["common", "wal"],
    "net": ["sim", "hash"],
    "overlay": ["net"],
    "storage": ["localstore", "overlay"],
    "query": ["storage"],
    "optimizer": ["query"],
    "sql": ["optimizer"],
    "client": ["query"],
    "deploy": ["client"],
    "workload": ["deploy", "sql"],
    "cdss": ["deploy", "sql"],
}


def _closure(layer):
    seen = set()
    stack = [layer]
    while stack:
        cur = stack.pop()
        if cur in seen:
            continue
        seen.add(cur)
        stack.extend(_LAYER_DEPS[cur])
    return seen


ALLOWED_INCLUDES = {layer: _closure(layer) for layer in _LAYER_DEPS}

# ---------------------------------------------------------------------------
# Rules
#
# A rule is (id, scope predicate over repo-relative paths, checker). Simple
# rules are one regex over comment-stripped lines; structural rules
# (unordered-iter, layering) get their own checkers.


@dataclass
class Finding:
    path: str  # repo-relative
    line: int  # 1-based
    rule: str
    message: str

    def render(self):
        return (f"{self.path}:{self.line}: [{self.rule}] {self.message} "
                f"— {DOC}#{self.rule}")


@dataclass
class SourceFile:
    path: str       # repo-relative, forward slashes
    raw_lines: list
    code_lines: list = field(default_factory=list)  # comments stripped

    @property
    def layer(self):
        parts = self.path.split("/")
        return parts[1] if len(parts) > 2 and parts[0] == "src" else None


def strip_comments(text):
    """Remove //-comments and /* */ blocks, preserving line structure and
    string literals (key codec rules match string/char literals)."""
    out = []
    i, n = 0, len(text)
    in_block = False
    in_str = None  # quote char when inside a literal
    while i < n:
        c = text[i]
        if in_block:
            if c == "\n":
                out.append(c)
            if text.startswith("*/", i):
                in_block = False
                i += 2
                continue
            i += 1
            continue
        if in_str:
            out.append(c)
            if c == "\\" and i + 1 < n:
                out.append(text[i + 1])
                i += 2
                continue
            if c == in_str:
                in_str = None
            i += 1
            continue
        if c in "\"'":
            in_str = c
            out.append(c)
            i += 1
            continue
        if text.startswith("//", i):
            while i < n and text[i] != "\n":
                i += 1
            continue
        if text.startswith("/*", i):
            in_block = True
            i += 2
            continue
        out.append(c)
        i += 1
    return "".join(out)


_ALLOW_RE = re.compile(r"//\s*lint:allow\(([\w,\s-]+)\)\s*:\s*(\S.*)?$")


def allowed(sf, lineno, rule):
    """True if raw line `lineno` (1-based) or the comment block directly
    above it carries a lint:allow for `rule` with a non-empty reason. The
    reason may wrap across further comment lines."""
    candidates = [lineno]
    ln = lineno - 1
    while 1 <= ln <= len(sf.raw_lines) and \
            sf.raw_lines[ln - 1].strip().startswith("//"):
        candidates.append(ln)
        ln -= 1
    for ln in candidates:
        if 1 <= ln <= len(sf.raw_lines):
            m = _ALLOW_RE.search(sf.raw_lines[ln - 1])
            if m and rule in [r.strip() for r in m.group(1).split(",")]:
                if not (m.group(2) or "").strip():
                    # An allow without a reason is itself a violation; let the
                    # finding stand so the author writes the reason down.
                    return False
                return True
    return False


def regex_rule(rule, pattern, message, scope=None, exclude=None):
    rx = re.compile(pattern)

    def check(sf, findings):
        if scope and not any(sf.path.startswith(p) for p in scope):
            return
        if exclude and any(sf.path.startswith(p) for p in exclude):
            return
        for idx, line in enumerate(sf.code_lines, start=1):
            if rx.search(line) and not allowed(sf, idx, rule):
                findings.append(Finding(sf.path, idx, rule, message))

    return rule, check


# --- Determinism -----------------------------------------------------------

RULES = []

RULES.append(regex_rule(
    "det-wallclock",
    r"\b(gettimeofday|clock_gettime|ftime|localtime(_r)?|gmtime(_r)?"
    r"|strftime|mktime)\s*\("
    r"|\btime\s*\(\s*(NULL|nullptr|0)?\s*\)"
    r"|std::chrono::(system_clock|steady_clock|high_resolution_clock)\b"
    r"|[^\w.]clock\s*\(\s*\)",
    "wall-clock read: simulated time comes from sim::Simulator::now(); real "
    "clocks break same-seed trace reproducibility"))

RULES.append(regex_rule(
    "det-rand",
    r"\bstd::rand\b|\bsrand\s*\(|[^\w.]rand\s*\(\s*\)"
    r"|\brandom_device\b|\bstd::mt19937(_64)?\b|\bdefault_random_engine\b",
    "non-deterministic or platform-varying randomness: all randomness flows "
    "through the seeded orchestra::Rng (src/common/rng.h)"))

RULES.append(regex_rule(
    "det-pointer-order",
    r"\bstd::(map|set|multimap|multiset)\s*<[^,>]*\*"
    r"|reinterpret_cast<\s*(std::)?u?intptr_t\b",
    "pointer-valued ordering: address order varies run to run (ASLR) and "
    "must never feed wire frames or the trace digest"))

# --- Codec unity -----------------------------------------------------------

_CODEC_SCOPE = ["src/storage/", "src/client/", "src/query/", "src/deploy/",
                "src/cdss/", "src/workload/"]
_CODEC_HOME = ["src/storage/keys."]

RULES.append(regex_rule(
    "codec-rawkey",
    r"\bkey\s*\[\s*0\s*\]|\bkey\.substr\s*\(|case\s*'[DPICME]'"
    r"|SeekPrefix\s*\(\s*\"[DPICME]\"\s*\)",
    "ad-hoc stored-key bytes: dispatch with keys::Tag()/tag constants and "
    "parse with the keys::Parse* codec (src/storage/keys.h)",
    scope=_CODEC_SCOPE, exclude=_CODEC_HOME))

_FRAME_HOME = ["src/storage/service.h", "src/storage/service.cc",
               "src/storage/publisher.cc"]

RULES.append(regex_rule(
    "codec-frame",
    r"\bkPutTuples\b",
    "the kPutTuples nested frame has one encoder (Publisher::IssueWrites) "
    "and one decoder (StorageService, case kPutTuples); building or parsing "
    "it elsewhere forks the wire format",
    scope=["src/"], exclude=_FRAME_HOME))

# --- RPC lifecycle ---------------------------------------------------------

RULES.append(regex_rule(
    "rpc-selfcapture",
    r"shared_ptr\s*<\s*std::function|make_shared\s*<\s*std::function",
    "shared_ptr<std::function> retry-cycle pattern: closures that capture a "
    "shared_ptr to themselves leak (the PR-1 callback-leak class); put "
    "per-call state in RpcClient's pending-call table instead"))

RULES.append(regex_rule(
    "rpc-raw-send",
    r"network\s*\(\s*\)\s*->\s*Send\s*\(|network_\s*->\s*Send\s*\(",
    "raw Network::Send bypasses the RPC lifecycle layer: requests go "
    "through RpcClient::Call (pending-call table, deadline, orphan reap), "
    "replies through RpcClient::SendReply",
    scope=["src/"], exclude=["src/net/"]))

# --- Hygiene ---------------------------------------------------------------

RULES.append(regex_rule(
    "wal-raw-io",
    r"\bf?open(at|dir)?\s*\(|\bfreopen\s*\(|\bcreat\s*\("
    r"|\bstd::(basic_)?[io]?fstream\b|\bstd::filesystem\b",
    "raw file I/O outside src/wal/: durability goes through wal::Backend so "
    "the simulator stays deterministic (MemoryBackend) and crash/torn-tail "
    "semantics are modeled in exactly one place",
    scope=["src/"], exclude=["src/wal/"]))

RULES.append(regex_rule(
    "hygiene-banned-fn",
    r"\b(strcpy|strcat|sprintf|vsprintf|gets|tmpnam|alloca|atoi|atol|atof)"
    r"\s*\(",
    "banned function: unbounded/UB-prone C API; use std::string, snprintf, "
    "or common/serial.h"))


# --- Structural rules ------------------------------------------------------

_UNORDERED_DECL = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<[^;{}()]*>\s+(\w+)\s*[;{=]")
_RANGE_FOR = re.compile(r"for\s*\(\s*[^;)]*?:\s*([\w.\->]+?)\s*\)")


def _sibling_paths(path):
    """The file itself plus its header/source sibling (same basename)."""
    base, ext = os.path.splitext(path)
    sibs = [path]
    for other in (".h", ".cc"):
        if other != ext:
            sibs.append(base + other)
    return sibs


def check_unordered_iter(sf, findings, file_map):
    """det-unordered-iter: range-for over a container declared unordered in
    this file or its sibling. Iteration order is a libstdc++ implementation
    artifact; it may not feed wire frames or the trace digest, and every
    allowed site must say why it is order-independent."""
    rule = "det-unordered-iter"
    names = set()
    for sib in _sibling_paths(sf.path):
        other = file_map.get(sib)
        if other:
            for line in other.code_lines:
                for m in _UNORDERED_DECL.finditer(line):
                    names.add(m.group(1))
    if not names:
        return
    for idx, line in enumerate(sf.code_lines, start=1):
        for m in _RANGE_FOR.finditer(line):
            expr = m.group(1)
            leaf = re.split(r"[.\->]", expr)[-1] or expr
            if leaf in names and not allowed(sf, idx, rule):
                findings.append(Finding(
                    sf.path, idx, rule,
                    f"iteration over unordered container '{leaf}': order is "
                    "an implementation artifact and may not feed wire "
                    "frames or the trace digest"))


_INCLUDE_RE = re.compile(r'#\s*include\s+"([^"]+)"')


def check_include_layering(sf, findings):
    rule = "hygiene-include-layering"
    layer = sf.layer
    if layer is None or layer not in ALLOWED_INCLUDES:
        return
    for idx, line in enumerate(sf.code_lines, start=1):
        m = _INCLUDE_RE.search(line)
        if not m:
            continue
        target = m.group(1)
        parts = target.split("/")
        if len(parts) < 2:
            continue  # repo-root include (bench_util.h style), not layered
        tlayer = parts[0]
        if tlayer not in _LAYER_DEPS:
            continue  # not a src/ layer header
        if tlayer not in ALLOWED_INCLUDES[layer] and not allowed(sf, idx, rule):
            findings.append(Finding(
                sf.path, idx, rule,
                f"src/{layer} may not include src/{tlayer} (link graph: "
                f"{layer} -> {', '.join(sorted(_LAYER_DEPS[layer])) or 'nothing'}); "
                "inverting a layer edge here would not link"))


RULE_IDS = [r for r, _ in RULES] + ["det-unordered-iter",
                                    "hygiene-include-layering"]


# ---------------------------------------------------------------------------
# Driver


def load_tree(root):
    files = {}
    src = os.path.join(root, "src")
    for dirpath, _, names in os.walk(src):
        for name in sorted(names):
            if not name.endswith((".h", ".cc")):
                continue
            full = os.path.join(dirpath, name)
            rel = os.path.relpath(full, root).replace(os.sep, "/")
            with open(full, encoding="utf-8") as f:
                text = f.read()
            sf = SourceFile(rel, text.splitlines())
            sf.code_lines = strip_comments(text).splitlines()
            files[rel] = sf
    return files


def lint_root(root):
    files = load_tree(root)
    findings = []
    for sf in files.values():
        for _, check in RULES:
            check(sf, findings)
        check_unordered_iter(sf, findings, files)
        check_include_layering(sf, findings)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def run_selftest(repo_root):
    """Fixture corpus: tools/lint/fixtures/<rule>/{flag,pass}/src/... — the
    flag tree must produce at least one finding of exactly that rule (and
    nothing else), the pass tree none at all."""
    fixtures = os.path.join(repo_root, "tools", "lint", "fixtures")
    if not os.path.isdir(fixtures):
        print(f"selftest: no fixture corpus at {fixtures}", file=sys.stderr)
        return 2
    failures = []
    rules_seen = set()
    for rule in sorted(os.listdir(fixtures)):
        rule_dir = os.path.join(fixtures, rule)
        if not os.path.isdir(rule_dir):
            continue
        if rule not in RULE_IDS:
            failures.append(f"{rule}: fixture directory for unknown rule")
            continue
        rules_seen.add(rule)
        for kind in ("flag", "pass"):
            sub = os.path.join(rule_dir, kind)
            if not os.path.isdir(sub):
                failures.append(f"{rule}/{kind}: missing fixture tree")
                continue
            found = lint_root(sub)
            if kind == "flag":
                if not any(f.rule == rule for f in found):
                    failures.append(f"{rule}/flag: rule did not fire")
                stray = [f for f in found if f.rule != rule]
                for f in stray:
                    failures.append(
                        f"{rule}/flag: stray finding {f.rule} at "
                        f"{f.path}:{f.line}")
            else:
                for f in found:
                    failures.append(
                        f"{rule}/pass: unexpected finding "
                        f"[{f.rule}] at {f.path}:{f.line}")
    for rule in RULE_IDS:
        if rule not in rules_seen:
            failures.append(f"{rule}: no fixture directory — every rule "
                            "needs a must-flag and a must-pass case")
    if failures:
        print("lint selftest FAILED:")
        for f in failures:
            print("  " + f)
        return 1
    print(f"lint selftest OK: {len(rules_seen)} rules, each with flag + "
          "pass fixtures")
    return 0


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="tree to lint (default: the repo containing this "
                         "script); scans <root>/src")
    ap.add_argument("--selftest", action="store_true",
                    help="run the fixture corpus instead of linting")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args(argv)

    repo_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

    if args.list_rules:
        for rule in RULE_IDS:
            print(rule)
        return 0
    if args.selftest:
        return run_selftest(repo_root)

    root = args.root or repo_root
    findings = lint_root(root)
    for f in findings:
        print(f.render())
    if findings:
        print(f"\norchestra-lint: {len(findings)} violation(s). Each rule's "
              f"invariant and escape hatch: {DOC}", file=sys.stderr)
        return 1
    print("orchestra-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
